#include "benchkit/stats.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace xgw::bench {

namespace {

/// splitmix64 — tiny, seedable, and good enough for bootstrap resampling
/// indices. Kept local so the stats kernel has zero dependencies.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n) by rejection — unbiased for any n.
  std::size_t below(std::size_t n) {
    const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % n;
    std::uint64_t x;
    do {
      x = next();
    } while (x >= limit);
    return static_cast<std::size_t>(x % n);
  }
};

double median_inplace(std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo = *std::max_element(
      v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace

double median(std::vector<double> v) { return median_inplace(v); }

double mad(const std::vector<double>& v, double center) {
  std::vector<double> dev;
  dev.reserve(v.size());
  for (double x : v) dev.push_back(std::abs(x - center));
  return median_inplace(dev);
}

ConfidenceInterval bootstrap_ci_median(const std::vector<double>& v,
                                       int resamples, double confidence,
                                       std::uint64_t seed) {
  ConfidenceInterval ci;
  if (v.empty()) return ci;
  if (v.size() == 1 || resamples < 2) {
    ci.lo = ci.hi = median(v);
    return ci;
  }
  SplitMix64 rng{seed};
  std::vector<double> medians(static_cast<std::size_t>(resamples));
  std::vector<double> resample(v.size());
  for (int r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < v.size(); ++i) resample[i] = v[rng.below(v.size())];
    medians[static_cast<std::size_t>(r)] = median_inplace(resample);
  }
  std::sort(medians.begin(), medians.end());
  const double alpha = 0.5 * (1.0 - confidence);
  auto quantile_index = [&](double q) {
    const double pos = q * static_cast<double>(medians.size() - 1);
    return static_cast<std::size_t>(std::lround(pos));
  };
  ci.lo = medians[quantile_index(alpha)];
  ci.hi = medians[quantile_index(1.0 - alpha)];
  return ci;
}

TimingStats summarize(std::vector<double> samples) {
  TimingStats s;
  s.samples = std::move(samples);
  if (s.samples.empty()) return s;
  s.median_s = median(s.samples);
  s.mad_s = mad(s.samples, s.median_s);
  const auto [lo, hi] = std::minmax_element(s.samples.begin(), s.samples.end());
  s.min_s = *lo;
  s.max_s = *hi;
  const ConfidenceInterval ci = bootstrap_ci_median(s.samples);
  s.ci_lo_s = ci.lo;
  s.ci_hi_s = ci.hi;
  return s;
}

}  // namespace xgw::bench

#include "benchkit/runner.h"

#include <cstdlib>

#include "common/timer.h"

namespace xgw::bench {

RunnerOptions RunnerOptions::from_env() {
  RunnerOptions opt;
  if (const char* fast = std::getenv("XGW_BENCH_FAST");
      fast != nullptr && *fast != '\0' && *fast != '0') {
    opt.warmup = 0;
    opt.min_reps = 3;
    opt.max_reps = 5;
    opt.min_time_s = 0.0;
    opt.max_time_s = 0.02;
  }
  if (const char* reps = std::getenv("XGW_BENCH_MIN_REPS");
      reps != nullptr && *reps != '\0') {
    const int n = std::atoi(reps);
    if (n > 0) {
      opt.min_reps = n;
      if (opt.max_reps < n) opt.max_reps = n;
    }
  }
  return opt;
}

TimingStats run_timed(const std::function<void()>& body,
                      const RunnerOptions& opt) {
  for (int i = 0; i < opt.warmup; ++i) body();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(opt.min_reps));
  double total = 0.0;
  while (true) {
    Stopwatch sw;
    body();
    const double t = sw.elapsed();
    samples.push_back(t);
    total += t;
    const int reps = static_cast<int>(samples.size());
    if (reps >= opt.max_reps) break;
    if (total >= opt.max_time_s && reps >= opt.min_reps) break;
    if (reps >= opt.min_reps && total >= opt.min_time_s) break;
  }
  return summarize(std::move(samples));
}

}  // namespace xgw::bench

// xgw_bench_compare — the perf-regression gate.
//
//   xgw_bench_compare [options] <baseline.json> <current.json> [more pairs...]
//
// Loads each (baseline, current) pair of xgw-bench-result-v1 documents,
// compares them with the noise-aware threshold logic of benchkit/compare.h,
// prints a summary, optionally writes a markdown regression report, and
// exits 0 (gate pass), 1 (gated regression), or 2 (usage / malformed
// input — the error names the file and series).
//
// --update-baseline rewrites each baseline file from its current document
// (re-serialized through obs::json so committed baselines are canonically
// formatted). POLICY: baseline updates must be their own reviewed commit —
// never fold a re-baseline into the change that moved the numbers.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "benchkit/compare.h"
#include "obs/json.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: xgw_bench_compare [options] <baseline.json> <current.json> "
      "[<baseline2> <current2> ...]\n"
      "\n"
      "options:\n"
      "  --rel-threshold X     time-regression threshold (default 0.05)\n"
      "  --counter-rel-tol X   counter tolerance (default 0 = exact)\n"
      "  --time-advisory       report time regressions without failing\n"
      "  --report FILE         write the markdown regression report\n"
      "  --update-baseline     overwrite each baseline from its current\n"
      "                        document (must be its own reviewed commit)\n");
}

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xgw::bench;
  CompareOptions opt;
  std::string report_path;
  bool update_baseline = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--rel-threshold") {
      const char* v = next();
      if (v == nullptr) return 2;
      opt.time_rel_threshold = std::strtod(v, nullptr);
    } else if (arg == "--counter-rel-tol") {
      const char* v = next();
      if (v == nullptr) return 2;
      opt.counter_rel_tol = std::strtod(v, nullptr);
    } else if (arg == "--time-advisory") {
      opt.time_advisory = true;
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return 2;
      report_path = v;
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (files.empty() || files.size() % 2 != 0) {
    std::fprintf(stderr,
                 "error: expected one or more <baseline> <current> pairs\n");
    usage();
    return 2;
  }

  if (update_baseline) {
    for (std::size_t i = 0; i < files.size(); i += 2) {
      const std::string& baseline = files[i];
      const std::string& current = files[i + 1];
      BenchDoc doc;
      std::string error;
      if (!load_bench_doc(current, doc, error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
      }
      std::ifstream in(current, std::ios::binary);
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      if (!write_text(baseline, text)) {
        std::fprintf(stderr, "error: cannot write %s\n", baseline.c_str());
        return 2;
      }
      std::printf("re-baselined %s from %s (%zu series)\n", baseline.c_str(),
                  current.c_str(), doc.series.size());
    }
    std::printf(
        "\nPOLICY: commit the baseline update on its own, with the\n"
        "justification in the commit message — never alongside the change\n"
        "that moved the numbers (README \"Re-baselining\").\n");
    return 0;
  }

  std::vector<BenchComparison> results;
  for (std::size_t i = 0; i < files.size(); i += 2) {
    BenchDoc baseline, current;
    std::string error;
    if (!load_bench_doc(files[i], baseline, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    if (!load_bench_doc(files[i + 1], current, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    if (!baseline.bench.empty() && !current.bench.empty() &&
        baseline.bench != current.bench)
      std::fprintf(stderr,
                   "warning: comparing different benches (\"%s\" vs \"%s\")\n",
                   baseline.bench.c_str(), current.bench.c_str());
    results.push_back(compare(baseline, current, opt));
  }

  const std::string md = markdown_report(results, opt);
  if (!report_path.empty()) {
    if (!write_text(report_path, md)) {
      std::fprintf(stderr, "error: cannot write report %s\n",
                   report_path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", report_path.c_str());
  }

  int failures = 0;
  for (const BenchComparison& r : results) {
    failures += r.failures();
    std::printf("%s: %s (%d gated regression%s, %zu series)\n",
                r.bench.c_str(), r.ok() ? "PASS" : "FAIL", r.failures(),
                r.failures() == 1 ? "" : "s", r.series.size());
    for (const SeriesComparison& s : r.series) {
      if (s.notes.empty()) continue;
      std::printf("  %s%s\n", s.key.c_str(), s.fails ? "  [FAIL]" : "");
      for (const std::string& n : s.notes) std::printf("    %s\n", n.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}

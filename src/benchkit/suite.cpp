#include "benchkit/suite.h"

#include <cstdio>

#include "benchkit/machine.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace xgw::bench {

using obs::json::Value;

Series& Series::counter(const std::string& name, double v) {
  counters_.emplace_back(name, v);
  return *this;
}

Series& Series::value(const std::string& name, double v) {
  values_.emplace_back(name, v);
  return *this;
}

Series& Series::info(const std::string& name, const std::string& v) {
  info_.emplace_back(name, v);
  return *this;
}

Series& Series::time(TimingStats stats) {
  has_time_ = true;
  time_ = std::move(stats);
  return *this;
}

Value Series::to_value() const {
  Value v = Value::make_object();
  v.set("key", Value::make_string(key_));
  if (!counters_.empty()) {
    Value& c = v.set("counters", Value::make_object());
    for (const auto& [name, x] : counters_) c.set(name, Value::make_number(x));
  }
  if (!values_.empty()) {
    Value& c = v.set("values", Value::make_object());
    for (const auto& [name, x] : values_) c.set(name, Value::make_number(x));
  }
  if (!info_.empty()) {
    Value& c = v.set("info", Value::make_object());
    for (const auto& [name, s] : info_) c.set(name, Value::make_string(s));
  }
  if (has_time_) {
    Value& t = v.set("time", Value::make_object());
    t.set("samples",
          Value::make_number(static_cast<double>(time_.samples.size())));
    t.set("median_s", Value::make_number(time_.median_s));
    t.set("mad_s", Value::make_number(time_.mad_s));
    t.set("min_s", Value::make_number(time_.min_s));
    t.set("max_s", Value::make_number(time_.max_s));
    t.set("ci_lo_s", Value::make_number(time_.ci_lo_s));
    t.set("ci_hi_s", Value::make_number(time_.ci_hi_s));
  }
  return v;
}

Suite::Suite(std::string bench_name) : bench_name_(std::move(bench_name)) {}

Series& Suite::series(const std::string& key) {
  for (Series& s : series_)
    if (s.key() == key) return s;
  series_.emplace_back(key);
  return series_.back();
}

Value Suite::to_value() const {
  Value doc = Value::make_object();
  doc.set("schema", Value::make_string("xgw-bench-result-v1"));
  doc.set("bench", Value::make_string(bench_name_));
  const MachineInfo& m = machine_info();
  Value& mv = doc.set("machine", Value::make_object());
  mv.set("host", Value::make_string(m.host));
  mv.set("cpu_model", Value::make_string(m.cpu_model));
  mv.set("hw_threads", Value::make_number(m.hw_threads));
  mv.set("omp_threads", Value::make_number(m.omp_threads));
  mv.set("compiler", Value::make_string(m.compiler));
  mv.set("build_type", Value::make_string(m.build_type));
  mv.set("flags", Value::make_string(m.flags));
  mv.set("git_sha", Value::make_string(m.git_sha));
  Value& arr = doc.set("series", Value::make_array());
  for (const Series& s : series_) arr.push(s.to_value());
  return doc;
}

bool Suite::write(const std::string& path) const {
  const std::string out_path = path.empty() ? default_path() : path;
  const std::string text = obs::json::dump(to_value(), 2) + "\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", out_path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu series)\n", out_path.c_str(), series_.size());
  return true;
}

bool write_run_report(const std::string& bench_name, const std::string& path,
                      double peak_gflops, double mem_bandwidth_gbs) {
  const obs::RunReportDoc doc =
      obs::build_run_report(obs::recorder(), bench_name, bench_name,
                            peak_gflops, mem_bandwidth_gbs);
  if (!doc.write(path)) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu stages)\n", path.c_str(), doc.stages.size());
  return true;
}

}  // namespace xgw::bench

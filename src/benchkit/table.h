#pragma once

// Human-readable output half of the bench harness: the fixed-width table
// printer and numeric formatters behind every paper-table reproduction.
// (The machine-readable half is suite.h; the two deliberately share
// nothing — tables are for eyes, JSON goes through obs::json.)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace xgw::bench {

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());

    auto print_row = [&](const std::vector<std::string>& r) {
      std::printf("|");
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < r.size() ? r[c] : std::string{};
        std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < width.size(); ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_sci(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", prec, v);
  return buf;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

/// FLOP/s with automatic unit (GF/TF/PF/EF per second).
inline std::string fmt_flops(double flops_per_s) {
  const char* units[] = {"FLOP/s", "kF/s", "MF/s", "GF/s",
                         "TF/s",   "PF/s", "EF/s"};
  int u = 0;
  while (flops_per_s >= 1000.0 && u < 6) {
    flops_per_s /= 1000.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", flops_per_s, units[u]);
  return buf;
}

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace xgw::bench

#pragma once

// Robust statistics for benchmark timing samples.
//
// Benchmark gating on shared machines cannot use means: one scheduler
// stall poisons the average and either hides a regression or invents one.
// The harness therefore summarizes every timed series with the median,
// the median absolute deviation (MAD), and a bootstrap confidence
// interval of the median — the noise-aware triple xgw_bench_compare's
// threshold logic is built on (a wall-time regression must exceed BOTH
// the relative threshold AND the confidence intervals to fail the gate).
//
// The bootstrap is seeded deterministically so two summarize() calls on
// the same samples produce bit-identical intervals — baselines stay
// reproducible.

#include <cstdint>
#include <vector>

namespace xgw::bench {

/// Median of `v` (by value: the selection reorders its copy). Empty input
/// returns 0. Even-length inputs average the two central order statistics.
double median(std::vector<double> v);

/// Median absolute deviation around `center` (typically median(v)).
/// Unscaled — no 1.4826 normal-consistency factor; the gate compares MADs
/// to MADs, never to standard deviations.
double mad(const std::vector<double>& v, double center);

struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile bootstrap confidence interval of the median: `resamples`
/// resamples with replacement, each reduced to its median, then the
/// (1-confidence)/2 and 1-(1-confidence)/2 quantiles of that distribution.
/// Deterministic for a given (v, resamples, confidence, seed). A single
/// sample (or empty input) collapses to the degenerate interval
/// [median, median].
ConfidenceInterval bootstrap_ci_median(const std::vector<double>& v,
                                       int resamples = 1000,
                                       double confidence = 0.95,
                                       std::uint64_t seed = 0x5eed5eed5eedULL);

/// Full summary of one timed series, as emitted into the unified bench
/// JSON schema (suite.h) and consumed by the compare gate.
struct TimingStats {
  std::vector<double> samples;  ///< per-repetition seconds, in run order
  double median_s = 0.0;
  double mad_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double ci_lo_s = 0.0;  ///< 95% bootstrap CI of the median, lower bound
  double ci_hi_s = 0.0;
};

/// Computes the TimingStats summary for `samples`.
TimingStats summarize(std::vector<double> samples);

}  // namespace xgw::bench

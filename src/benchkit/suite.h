#pragma once

// The unified bench result schema ("xgw-bench-result-v1") and its writer.
//
// Every bench_* binary builds ONE Suite and writes ONE BENCH_<name>.json
// next to its human-readable tables. The schema separates three kinds of
// series data because the compare gate treats them differently:
//
//   counters — deterministic, machine-independent quantities (FLOP counts,
//              byte-model sizes, planner block shapes, basis dimensions).
//              Compared EXACTLY against the baseline: any drift fails the
//              gate. Keep thread- and wall-clock-dependent numbers out.
//   values   — informational measurements (GFLOP/s, ratios, physics
//              results). Reported as deltas, never gated.
//   time     — wall-time TimingStats (median/MAD/bootstrap CI) from
//              run_timed(). Gated with the noise-aware threshold logic,
//              or report-only under --time-advisory (the CI default on
//              shared runners).
//   info     — string tags (variant names, units) carried for reporting.
//
// Document layout:
// {
//   "schema": "xgw-bench-result-v1",
//   "bench": "<name>",
//   "machine": { host, cpu_model, hw_threads, omp_threads, compiler,
//                build_type, flags, git_sha },
//   "series": [ { "key": "...", "counters": {...}, "values": {...},
//                 "info": {...}, "time": { samples, median_s, mad_s,
//                 min_s, max_s, ci_lo_s, ci_hi_s } } ]
// }
//
// Series keys are the stable match keys of the compare gate: encode the
// configuration ("zgemm/split/n=256"), never an index or a timestamp.

#include <string>
#include <vector>

#include "benchkit/stats.h"
#include "obs/json.h"

namespace xgw::bench {

class Series {
 public:
  explicit Series(std::string key) : key_(std::move(key)) {}

  /// Deterministic quantity, exact-compared by the gate.
  Series& counter(const std::string& name, double v);
  /// Informational measurement, report-only.
  Series& value(const std::string& name, double v);
  /// String tag, report-only.
  Series& info(const std::string& name, const std::string& v);
  /// Wall-time summary from run_timed(); gated noise-aware.
  Series& time(TimingStats stats);

  const std::string& key() const { return key_; }
  obs::json::Value to_value() const;

 private:
  std::string key_;
  std::vector<std::pair<std::string, double>> counters_;
  std::vector<std::pair<std::string, double>> values_;
  std::vector<std::pair<std::string, std::string>> info_;
  bool has_time_ = false;
  TimingStats time_;
};

class Suite {
 public:
  explicit Suite(std::string bench_name);

  /// Starts (or returns the existing) series with the given stable key.
  Series& series(const std::string& key);

  const std::string& bench_name() const { return bench_name_; }
  /// The canonical artifact path: BENCH_<bench>.json in the working dir.
  std::string default_path() const { return "BENCH_" + bench_name_ + ".json"; }

  obs::json::Value to_value() const;

  /// Serializes through obs::json::dump and writes `path` (default_path()
  /// when empty). Returns false (with a stderr warning) on I/O failure so
  /// benches keep running on read-only filesystems.
  bool write(const std::string& path = std::string()) const;

 private:
  std::string bench_name_;
  std::vector<Series> series_;
};

/// Builds a RunReportDoc (obs/report.h) from the global trace recorder and
/// writes it next to the suite artifact — the bench must have run with the
/// recorder enabled. Returns false and warns on I/O failure.
bool write_run_report(const std::string& bench_name, const std::string& path,
                      double peak_gflops = 0.0,
                      double mem_bandwidth_gbs = 0.0);

}  // namespace xgw::bench

#pragma once

// Machine fingerprint stamped into every unified bench JSON document.
//
// A perf number without its machine is noise: the compare gate prints the
// baseline and current fingerprints side by side in its regression report
// so a reviewer can immediately see when a "regression" is really a
// different CPU, compiler, or thread count. Deterministic counters
// (FLOPs/bytes/plan shapes) are machine-independent and gate across
// fingerprints; wall-time comparisons across differing fingerprints are
// advisory by design.

#include <string>

namespace xgw::bench {

struct MachineInfo {
  std::string host;        ///< hostname, or "unknown"
  std::string cpu_model;   ///< /proc/cpuinfo "model name", or "unknown"
  int hw_threads = 0;      ///< std::thread::hardware_concurrency
  int omp_threads = 0;     ///< xgw_num_threads() at fingerprint time
  std::string compiler;    ///< e.g. "gcc 12.2.0" / "clang 17.0.6"
  std::string build_type;  ///< CMAKE_BUILD_TYPE baked in at compile time
  std::string flags;       ///< optimization-relevant flags baked in
  std::string git_sha;     ///< XGW_GIT_SHA env, else .git/HEAD, else "unknown"
};

/// Collects the fingerprint (cached after the first call; the git SHA and
/// cpuinfo reads happen once per process).
const MachineInfo& machine_info();

}  // namespace xgw::bench

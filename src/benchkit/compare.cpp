#include "benchkit/compare.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace xgw::bench {

using obs::json::Value;

const double* SeriesData::find_counter(const std::string& name) const {
  for (const auto& [k, v] : counters)
    if (k == name) return &v;
  return nullptr;
}

const SeriesData* BenchDoc::find(const std::string& key) const {
  for (const SeriesData& s : series)
    if (s.key == key) return &s;
  return nullptr;
}

std::string BenchDoc::machine_summary() const {
  auto get = [&](const char* k) -> std::string {
    for (const auto& [key, v] : machine)
      if (key == k) return v;
    return "?";
  };
  return get("cpu_model") + ", " + get("hw_threads") + " hw threads, " +
         get("compiler") + " " + get("build_type") + ", git " +
         get("git_sha").substr(0, 12);
}

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool parse_kv_numbers(const Value& obj,
                      std::vector<std::pair<std::string, double>>& out,
                      const std::string& where, std::string& error) {
  for (const auto& [k, v] : obj.obj) {
    if (!v.is_number()) {
      error = where + ": member \"" + k + "\" is not a number";
      return false;
    }
    out.emplace_back(k, v.number);
  }
  return true;
}

}  // namespace

bool load_bench_doc(const std::string& path, BenchDoc& out,
                    std::string& error) {
  out = BenchDoc{};
  out.path = path;
  std::string text;
  if (!read_file(path, text)) {
    error = path + ": cannot read file";
    return false;
  }
  Value doc;
  std::string perr;
  if (!obs::json::parse(text, doc, perr)) {
    error = path + ": JSON parse error: " + perr;
    return false;
  }
  if (!doc.is_object()) {
    error = path + ": top-level value is not an object";
    return false;
  }
  const Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->str != "xgw-bench-result-v1") {
    error = path + ": not an xgw-bench-result-v1 document (missing or "
                   "unexpected \"schema\")";
    return false;
  }
  const Value* bench = doc.find("bench");
  if (bench == nullptr || !bench->is_string()) {
    error = path + ": missing \"bench\" name";
    return false;
  }
  out.bench = bench->str;
  if (const Value* m = doc.find("machine"); m != nullptr && m->is_object())
    for (const auto& [k, v] : m->obj)
      out.machine.emplace_back(
          k, v.is_string() ? v.str : obs::json::format_number(v.number));
  const Value* series = doc.find("series");
  if (series == nullptr || !series->is_array()) {
    error = path + ": missing \"series\" array";
    return false;
  }
  for (std::size_t i = 0; i < series->arr.size(); ++i) {
    const Value& sv = series->arr[i];
    const std::string where = path + ": series[" + std::to_string(i) + "]";
    if (!sv.is_object()) {
      error = where + ": not an object";
      return false;
    }
    SeriesData sd;
    const Value* key = sv.find("key");
    if (key == nullptr || !key->is_string() || key->str.empty()) {
      error = where + ": missing \"key\"";
      return false;
    }
    sd.key = key->str;
    const std::string swhere = path + ": series \"" + sd.key + "\"";
    if (out.find(sd.key) != nullptr) {
      error = swhere + ": duplicate series key";
      return false;
    }
    if (const Value* c = sv.find("counters"); c != nullptr) {
      if (!c->is_object() ||
          !parse_kv_numbers(*c, sd.counters, swhere + ": counters", error)) {
        if (error.empty()) error = swhere + ": \"counters\" is not an object";
        return false;
      }
    }
    if (const Value* c = sv.find("values"); c != nullptr) {
      if (!c->is_object() ||
          !parse_kv_numbers(*c, sd.values, swhere + ": values", error)) {
        if (error.empty()) error = swhere + ": \"values\" is not an object";
        return false;
      }
    }
    if (const Value* c = sv.find("info"); c != nullptr && c->is_object())
      for (const auto& [k, v] : c->obj)
        if (v.is_string()) sd.info.emplace_back(k, v.str);
    if (const Value* t = sv.find("time"); t != nullptr) {
      if (!t->is_object()) {
        error = swhere + ": \"time\" is not an object";
        return false;
      }
      auto num = [&](const char* name, double& dst) {
        const Value* v = t->find(name);
        if (v == nullptr || !v->is_number()) {
          error = swhere + ": time block missing \"" + name + "\"";
          return false;
        }
        dst = v->number;
        return true;
      };
      double samples = 0.0;
      if (!num("samples", samples) || !num("median_s", sd.median_s) ||
          !num("mad_s", sd.mad_s) || !num("ci_lo_s", sd.ci_lo_s) ||
          !num("ci_hi_s", sd.ci_hi_s))
        return false;
      sd.time_samples = static_cast<int>(samples);
      sd.has_time = true;
    }
    out.series.push_back(std::move(sd));
  }
  error.clear();
  return true;
}

bool BenchComparison::ok() const { return failures() == 0; }

int BenchComparison::failures() const {
  int n = 0;
  for (const SeriesComparison& s : series) n += s.fails ? 1 : 0;
  return n;
}

namespace {

std::string pct(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * rel);
  return buf;
}

std::string num(double v) { return obs::json::format_number(v); }

}  // namespace

BenchComparison compare(const BenchDoc& baseline, const BenchDoc& current,
                        const CompareOptions& opt) {
  BenchComparison out;
  out.bench = current.bench.empty() ? baseline.bench : current.bench;
  out.baseline_path = baseline.path;
  out.current_path = current.path;
  out.baseline_machine = baseline.machine_summary();
  out.current_machine = current.machine_summary();

  for (const SeriesData& base : baseline.series) {
    SeriesComparison sc;
    sc.key = base.key;
    const SeriesData* cur = current.find(base.key);
    if (cur == nullptr) {
      sc.status = SeriesStatus::kRemoved;
      sc.notes.push_back("present in baseline, missing from current run");
      out.series.push_back(std::move(sc));
      continue;
    }

    // Deterministic counters: exact (or tolerance-bounded) equality.
    for (const auto& [name, bval] : base.counters) {
      const double* cval = cur->find_counter(name);
      if (cval == nullptr) {
        sc.status = SeriesStatus::kCounterMismatch;
        sc.fails = true;
        sc.notes.push_back("counter \"" + name +
                           "\" missing from current run (baseline " +
                           num(bval) + ")");
        continue;
      }
      const double denom = std::max(std::abs(bval), 1e-300);
      const double rel = std::abs(*cval - bval) / denom;
      if (rel > opt.counter_rel_tol) {
        sc.status = SeriesStatus::kCounterMismatch;
        sc.fails = true;
        char ratio[32];
        std::snprintf(ratio, sizeof(ratio), "%.3gx", *cval / bval);
        sc.notes.push_back("counter \"" + name + "\": baseline " + num(bval) +
                           " -> current " + num(*cval) + " (" + ratio + ")");
      }
    }

    // Wall time: noise-aware. Fails only when the median slowdown exceeds
    // the relative threshold AND the bootstrap CIs are disjoint.
    if (base.has_time && cur->has_time && base.median_s > 0.0) {
      const double rel = cur->median_s / base.median_s - 1.0;
      const bool beyond_threshold = rel > opt.time_rel_threshold;
      const bool beyond_noise = cur->ci_lo_s > base.ci_hi_s;
      const bool improved = -rel > opt.time_rel_threshold &&
                            cur->ci_hi_s < base.ci_lo_s;
      const std::string delta =
          "time: baseline median " + num(base.median_s) + " s [" +
          num(base.ci_lo_s) + ", " + num(base.ci_hi_s) + "] -> current " +
          num(cur->median_s) + " s [" + num(cur->ci_lo_s) + ", " +
          num(cur->ci_hi_s) + "] (" + pct(rel) + ")";
      if (beyond_threshold && beyond_noise) {
        if (sc.status == SeriesStatus::kOk)
          sc.status = SeriesStatus::kTimeRegression;
        if (!opt.time_advisory) sc.fails = true;
        sc.notes.push_back(delta + (opt.time_advisory
                                        ? " — regression (advisory)"
                                        : " — REGRESSION"));
      } else if (beyond_threshold) {
        sc.notes.push_back(delta +
                           " — above threshold but within noise (CIs "
                           "overlap), not gated");
      } else if (improved) {
        if (sc.status == SeriesStatus::kOk)
          sc.status = SeriesStatus::kTimeImproved;
        sc.notes.push_back(delta + " — improvement");
      }
    }

    // Informational values: largest deltas surface in the report.
    for (const auto& [name, bval] : cur->values) {
      for (const auto& [bname, base_v] : base.values) {
        if (bname != name || base_v == 0.0) continue;
        const double rel = bval / base_v - 1.0;
        if (std::abs(rel) > opt.time_rel_threshold)
          sc.notes.push_back("value \"" + name + "\": " + num(base_v) +
                             " -> " + num(bval) + " (" + pct(rel) +
                             ", report-only)");
      }
    }

    out.series.push_back(std::move(sc));
  }

  for (const SeriesData& cur : current.series) {
    if (baseline.find(cur.key) != nullptr) continue;
    SeriesComparison sc;
    sc.key = cur.key;
    sc.status = SeriesStatus::kNew;
    sc.notes.push_back("new series, no baseline — will gate once baselined");
    out.series.push_back(std::move(sc));
  }
  return out;
}

std::string markdown_report(const std::vector<BenchComparison>& results,
                            const CompareOptions& opt) {
  std::ostringstream md;
  int total_failures = 0;
  for (const BenchComparison& r : results) total_failures += r.failures();

  md << "# Benchmark regression report\n\n";
  md << (total_failures == 0 ? "**Gate: PASS**" : "**Gate: FAIL**")
     << " — " << total_failures << " gated regression"
     << (total_failures == 1 ? "" : "s") << " across " << results.size()
     << " bench document" << (results.size() == 1 ? "" : "s") << ".\n\n";
  md << "Thresholds: time fails above "
     << obs::json::format_number(100.0 * opt.time_rel_threshold)
     << "% slowdown with disjoint 95% bootstrap CIs"
     << (opt.time_advisory ? " (ADVISORY on this run — report-only)" : "")
     << "; deterministic counters compared "
     << (opt.counter_rel_tol == 0.0
             ? std::string("exactly")
             : "within rel. tol. " +
                   obs::json::format_number(opt.counter_rel_tol))
     << ".\n\n";

  for (const BenchComparison& r : results) {
    md << "## " << r.bench << "\n\n";
    md << "- baseline: `" << r.baseline_path << "` (" << r.baseline_machine
       << ")\n";
    md << "- current:  `" << r.current_path << "` (" << r.current_machine
       << ")\n\n";

    bool wrote_any = false;
    for (const SeriesComparison& s : r.series) {
      if (s.status == SeriesStatus::kOk && s.notes.empty()) continue;
      wrote_any = true;
      const char* tag = "";
      switch (s.status) {
        case SeriesStatus::kCounterMismatch: tag = "FAIL (counter)"; break;
        case SeriesStatus::kTimeRegression:
          tag = s.fails ? "FAIL (time)" : "regression (advisory)";
          break;
        case SeriesStatus::kTimeImproved: tag = "improved"; break;
        case SeriesStatus::kNew: tag = "new"; break;
        case SeriesStatus::kRemoved: tag = "removed"; break;
        case SeriesStatus::kOk: tag = "ok"; break;
      }
      md << "- **" << s.key << "** — " << tag << "\n";
      for (const std::string& n : s.notes) md << "  - " << n << "\n";
    }
    if (!wrote_any) md << "All series match the baseline.\n";
    md << "\n";
  }
  return md.str();
}

}  // namespace xgw::bench

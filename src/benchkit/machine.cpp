#include "benchkit/machine.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

// cpu_model_name()/compiler_id() live in common/hostinfo so the GEMM
// autotune cache (la/autotune.*) keys on the SAME host fields this
// fingerprint records.
#include "common/hostinfo.h"
#include "la/gemm.h"

namespace xgw::bench {

namespace {

std::string host_name() {
  char buf[256] = {0};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') return buf;
  return "unknown";
}

/// Resolves HEAD from a `.git` directory found at or above `start`.
std::string git_sha_from_tree(std::string dir) {
  for (int depth = 0; depth < 16; ++depth) {
    std::ifstream head(dir + "/.git/HEAD");
    if (head) {
      std::string line;
      std::getline(head, line);
      if (line.compare(0, 5, "ref: ") == 0) {
        const std::string ref = line.substr(5);
        std::ifstream reffile(dir + "/.git/" + ref);
        std::string sha;
        if (reffile && std::getline(reffile, sha) && !sha.empty()) return sha;
        // Packed ref fallback.
        std::ifstream packed(dir + "/.git/packed-refs");
        while (packed && std::getline(packed, line))
          if (line.size() > 41 && line.compare(41, std::string::npos, ref) == 0)
            return line.substr(0, 40);
        return "unknown";
      }
      return line.empty() ? "unknown" : line;  // detached HEAD: bare SHA
    }
    dir += "/..";
  }
  return "unknown";
}

std::string git_sha() {
  if (const char* env = std::getenv("XGW_GIT_SHA"); env != nullptr && *env)
    return env;
  return git_sha_from_tree(".");
}

MachineInfo collect() {
  MachineInfo m;
  m.host = host_name();
  m.cpu_model = cpu_model_name();
  m.hw_threads = static_cast<int>(std::thread::hardware_concurrency());
  m.omp_threads = xgw_num_threads();
  m.compiler = compiler_id();
#ifdef XGW_BENCH_BUILD_TYPE
  m.build_type = XGW_BENCH_BUILD_TYPE;
#else
  m.build_type = "unknown";
#endif
#ifdef XGW_BENCH_FLAGS
  m.flags = XGW_BENCH_FLAGS;
#else
  m.flags = "unknown";
#endif
  m.git_sha = git_sha();
  return m;
}

}  // namespace

const MachineInfo& machine_info() {
  static const MachineInfo m = collect();
  return m;
}

}  // namespace xgw::bench

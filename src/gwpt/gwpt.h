#pragma once

// GW perturbation theory (Sec. 5.1 of the paper; Li et al., PRL 122,
// 186402 (2019)): electron-phonon coupling at the many-body level.
//
// For each displacement perturbation R_p, Eq. 5 assembles the first-order
// self-energy from perturbed matrix elements dM (built from d psi) while
// holding the screened interaction fixed (the GPP model and band energies
// enter unperturbed — GWPT's linear-response structure). The GW-level
// electron-phonon matrix element is then
//   g^GW_lm(p) = <l| dV |m> + [dSigma(E)]_lm,
// compared against the DFPT-level g^DFPT_lm(p) = <l| dV |m>.
//
// The N_p perturbations are INDEPENDENT — the paper parallelizes them
// trivially across the machine; here the driver exposes them as a loop the
// perf module costs accordingly.

#include "core/sigma.h"
#include "gwpt/dfpt.h"

namespace xgw {

struct GwptOptions {
  idx n_e_points = 4;          ///< energy grid points for dSigma(E)
  double degen_tol = 1e-6;     ///< sum-over-states degeneracy exclusion
  GemmVariant gemm = GemmVariant::kAuto;
};

/// Result for one perturbation p over the external band set.
struct GwptResult {
  Perturbation perturbation;
  ZMatrix g_dfpt;              ///< <l|dV|m> (N_Sigma x N_Sigma)
  ZMatrix g_gw;                ///< g_dfpt + dSigma(E_mid)
  std::vector<ZMatrix> dsigma; ///< dSigma_lm on the energy grid
  std::vector<double> e_grid;
};

class GwptCalculation {
 public:
  /// Shares the GW machinery (screening, GPP model) of `gw`.
  GwptCalculation(GwCalculation& gw, const GwptOptions& opt = {});

  /// Runs one perturbation (atom, axis) for the external band set.
  GwptResult run_perturbation(const Perturbation& p,
                              const std::vector<idx>& bands,
                              FlopCounter* flops = nullptr);

  /// Runs all 3 * n_atoms displacement perturbations (or a subset) —
  /// the paper's N_p loop.
  std::vector<GwptResult> run_all(const std::vector<Perturbation>& ps,
                                  const std::vector<idx>& bands,
                                  FlopCounter* flops = nullptr);

  /// dM_{l n}(G) for fixed n over the external set, given d psi rows.
  /// Reference path (3 FFTs per element via compute_pair_raw);
  /// run_perturbation assembles the same matrices with hoisted real-space
  /// transforms and one FFT per element — this stays as the independently
  /// simple implementation the tests compare against.
  ZMatrix dm_matrix(const std::vector<idx>& ext, idx n,
                    const ZMatrix& dpsi) const;

 private:
  GwCalculation& gw_;
  GwptOptions opt_;
};

}  // namespace xgw

#pragma once

// Phonons at Gamma from frozen-phonon force constants, and the mode-resolved
// electron-phonon vertex that GWPT feeds (Fig. 1c of the paper: the
// perturbations R_p may be "a particular atom moving along one direction,
// or a phonon eigenmode").
//
// Forces come from the Hellmann-Feynman theorem (exact for the EPM mean
// field, whose dV/dR is analytic):
//   F_{a,alpha} = - 2 sum_v <psi_v| dV/dR_{a,alpha} |psi_v>.
// Force constants are central finite differences of these forces over
// displaced self-consistent solutions; the dynamical matrix is
// mass-weighted, acoustic-sum-rule corrected, and diagonalized for
// {omega_nu, e_nu}. The standard vertex then converts per-displacement
// couplings into per-mode couplings:
//   g^nu_lm = sum_{a,alpha} e_nu(a,alpha) / sqrt(2 M_a omega_nu)
//             g^{a,alpha}_lm.

#include <array>
#include <vector>

#include "gwpt/gwpt.h"
#include "mf/epm.h"

namespace xgw {

/// Atomic mass in electron masses (a.u.) for a species name ("Si", "Li",
/// "H", "B", "N"); throws for unknown species.
double species_mass_au(const std::string& name);

/// Hellmann-Feynman forces (Ha/Bohr) on every atom, 3 components each,
/// from the occupied states of `wf` solved for `model` at cutoff of `h`.
std::vector<Vec3> hellmann_feynman_forces(const EpmModel& model,
                                          const GSphere& sphere,
                                          const Wavefunctions& wf);

/// 3N x 3N force-constant matrix Phi[(a,alpha)][(b,beta)] = -dF_b,beta/dR_a,alpha
/// via central finite differences (each column is one displaced dense
/// solve). `delta` is the displacement (Bohr).
DMatrix force_constants(const EpmModel& model, double cutoff,
                        double delta = 1e-3);

struct PhononModes {
  std::vector<double> omega;        ///< mode frequencies (Ha); acoustic ~ 0
  DMatrix eigenvectors;             ///< column nu = mass-weighted e_nu (3N)
  idx n_modes() const { return static_cast<idx>(omega.size()); }
};

/// Diagonalizes the acoustic-sum-rule-corrected dynamical matrix
/// D = Phi / sqrt(M_a M_b). Negative omega^2 (unstable directions) are
/// reported as negative omega values.
PhononModes phonon_modes(const EpmModel& model, const DMatrix& phi);

/// Mode-resolved electron-phonon coupling: combines per-displacement GWPT
/// results into g^nu for each mode with omega_nu > omega_min. Returns one
/// (mode, g_dfpt, g_gw) record per retained mode.
struct ModeCoupling {
  idx mode = 0;
  double omega = 0.0;   ///< Ha
  ZMatrix g_dfpt;       ///< N_Sigma x N_Sigma
  ZMatrix g_gw;
};
std::vector<ModeCoupling> mode_couplings(
    const EpmModel& model, const PhononModes& modes,
    const std::vector<GwptResult>& per_displacement,
    double omega_min = 1e-5);

}  // namespace xgw

#include "gwpt/gwpt.h"

#include "common/error.h"
#include "obs/span.h"

namespace xgw {

GwptCalculation::GwptCalculation(GwCalculation& gw, const GwptOptions& opt)
    : gw_(gw), opt_(opt) {}

ZMatrix GwptCalculation::dm_matrix(const std::vector<idx>& ext, idx n,
                                   const ZMatrix& dpsi) const {
  const Wavefunctions& wf = gw_.wavefunctions();
  const Mtxel& mt = gw_.mtxel();
  const idx ng = gw_.n_g();
  ZMatrix dm(static_cast<idx>(ext.size()), ng);
  std::vector<cplx> row(static_cast<std::size_t>(ng));
  for (std::size_t i = 0; i < ext.size(); ++i) {
    const idx l = ext[i];
    // dM_{ln} = M(d psi_l, psi_n) + M(psi_l, d psi_n).
    mt.compute_pair_raw(dpsi.row(l), wf.coeff.row(n), row.data());
    for (idx g = 0; g < ng; ++g) dm(static_cast<idx>(i), g) = row[static_cast<std::size_t>(g)];
    mt.compute_pair_raw(wf.coeff.row(l), dpsi.row(n), row.data());
    for (idx g = 0; g < ng; ++g) dm(static_cast<idx>(i), g) += row[static_cast<std::size_t>(g)];
  }
  return dm;
}

GwptResult GwptCalculation::run_perturbation(const Perturbation& p,
                                             const std::vector<idx>& bands,
                                             FlopCounter* flops) {
  XGW_REQUIRE(!bands.empty(), "gwpt: empty band set");
  const Wavefunctions& wf = gw_.wavefunctions();
  const idx ns = static_cast<idx>(bands.size());

  GwptResult res;
  res.perturbation = p;

  // DFPT stage: dV and d psi (sum over states on the dense band set).
  ZMatrix dv, dpsi;
  {
    obs::Span scope(gw_.timers(),"gwpt_dfpt");
    dv = dv_matrix(gw_.hamiltonian().model(), gw_.psi_sphere(), p);
    dpsi = dpsi_sum_over_states(wf, dv, opt_.degen_tol);
  }

  // g_DFPT = <l|dV|m> restricted to the external set.
  {
    const ZMatrix dvb = dv_band_matrix(wf, dv);
    res.g_dfpt = ZMatrix(ns, ns);
    for (idx i = 0; i < ns; ++i)
      for (idx j = 0; j < ns; ++j)
        res.g_dfpt(i, j) = dvb(bands[static_cast<std::size_t>(i)],
                               bands[static_cast<std::size_t>(j)]);
  }

  // Energy grid spanning the external window (same convention as
  // sigma_offdiag).
  double e_lo = wf.energy[static_cast<std::size_t>(bands.front())];
  double e_hi = e_lo;
  for (idx l : bands) {
    e_lo = std::min(e_lo, wf.energy[static_cast<std::size_t>(l)]);
    e_hi = std::max(e_hi, wf.energy[static_cast<std::size_t>(l)]);
  }
  const double pad = std::max(0.05, 0.1 * (e_hi - e_lo));
  e_lo -= pad;
  e_hi += pad;
  res.e_grid.resize(static_cast<std::size_t>(opt_.n_e_points));
  for (idx i = 0; i < opt_.n_e_points; ++i)
    res.e_grid[static_cast<std::size_t>(i)] =
        (opt_.n_e_points == 1)
            ? 0.5 * (e_lo + e_hi)
            : e_lo + (e_hi - e_lo) * static_cast<double>(i) /
                         static_cast<double>(opt_.n_e_points - 1);

  // M and dM blocks per internal band.
  std::vector<ZMatrix> m_all(static_cast<std::size_t>(wf.n_bands()));
  std::vector<ZMatrix> dm_all(static_cast<std::size_t>(wf.n_bands()));
  {
    obs::Span scope(gw_.timers(),"gwpt_mtxel");
    for (idx n = 0; n < wf.n_bands(); ++n) {
      m_all[static_cast<std::size_t>(n)] = gw_.m_matrix_right(bands, n);
      dm_all[static_cast<std::size_t>(n)] = dm_matrix(bands, n, dpsi);
    }
  }

  // Eq. 5 contraction via the off-diag GPP kernel machinery.
  {
    obs::Span scope(gw_.timers(),"gwpt_gpp_kernel");
    const GppOffdiagKernel kernel(gw_.gpp(), gw_.coulomb());
    res.dsigma = kernel.compute_perturbed(m_all, dm_all, wf.energy,
                                          wf.n_valence, res.e_grid, opt_.gemm,
                                          flops);
  }

  // g_GW at the middle grid energy.
  const std::size_t mid = res.dsigma.size() / 2;
  res.g_gw = res.g_dfpt;
  for (idx i = 0; i < ns; ++i)
    for (idx j = 0; j < ns; ++j) res.g_gw(i, j) += res.dsigma[mid](i, j);
  return res;
}

std::vector<GwptResult> GwptCalculation::run_all(
    const std::vector<Perturbation>& ps, const std::vector<idx>& bands,
    FlopCounter* flops) {
  std::vector<GwptResult> out;
  out.reserve(ps.size());
  for (const Perturbation& p : ps) out.push_back(run_perturbation(p, bands, flops));
  return out;
}

}  // namespace xgw

#include "gwpt/gwpt.h"

#include "common/error.h"
#include "obs/span.h"

namespace xgw {

GwptCalculation::GwptCalculation(GwCalculation& gw, const GwptOptions& opt)
    : gw_(gw), opt_(opt) {}

ZMatrix GwptCalculation::dm_matrix(const std::vector<idx>& ext, idx n,
                                   const ZMatrix& dpsi) const {
  const Wavefunctions& wf = gw_.wavefunctions();
  const Mtxel& mt = gw_.mtxel();
  const idx ng = gw_.n_g();
  ZMatrix dm(static_cast<idx>(ext.size()), ng);
  std::vector<cplx> row(static_cast<std::size_t>(ng));
  for (std::size_t i = 0; i < ext.size(); ++i) {
    const idx l = ext[i];
    // dM_{ln} = M(d psi_l, psi_n) + M(psi_l, d psi_n).
    mt.compute_pair_raw(dpsi.row(l), wf.coeff.row(n), row.data());
    for (idx g = 0; g < ng; ++g) dm(static_cast<idx>(i), g) = row[static_cast<std::size_t>(g)];
    mt.compute_pair_raw(wf.coeff.row(l), dpsi.row(n), row.data());
    for (idx g = 0; g < ng; ++g) dm(static_cast<idx>(i), g) += row[static_cast<std::size_t>(g)];
  }
  return dm;
}

GwptResult GwptCalculation::run_perturbation(const Perturbation& p,
                                             const std::vector<idx>& bands,
                                             FlopCounter* flops) {
  XGW_REQUIRE(!bands.empty(), "gwpt: empty band set");
  const Wavefunctions& wf = gw_.wavefunctions();
  const idx ns = static_cast<idx>(bands.size());

  GwptResult res;
  res.perturbation = p;

  // DFPT stage: dV and d psi (sum over states on the dense band set).
  ZMatrix dv, dpsi;
  {
    obs::Span scope(gw_.timers(),"gwpt_dfpt");
    dv = dv_matrix(gw_.hamiltonian().model(), gw_.psi_sphere(), p);
    dpsi = dpsi_sum_over_states(wf, dv, opt_.degen_tol);
  }

  // g_DFPT = <l|dV|m> restricted to the external set.
  {
    const ZMatrix dvb = dv_band_matrix(wf, dv);
    res.g_dfpt = ZMatrix(ns, ns);
    for (idx i = 0; i < ns; ++i)
      for (idx j = 0; j < ns; ++j)
        res.g_dfpt(i, j) = dvb(bands[static_cast<std::size_t>(i)],
                               bands[static_cast<std::size_t>(j)]);
  }

  // Energy grid spanning the external window (same convention as
  // sigma_offdiag).
  double e_lo = wf.energy[static_cast<std::size_t>(bands.front())];
  double e_hi = e_lo;
  for (idx l : bands) {
    e_lo = std::min(e_lo, wf.energy[static_cast<std::size_t>(l)]);
    e_hi = std::max(e_hi, wf.energy[static_cast<std::size_t>(l)]);
  }
  const double pad = std::max(0.05, 0.1 * (e_hi - e_lo));
  e_lo -= pad;
  e_hi += pad;
  res.e_grid.resize(static_cast<std::size_t>(opt_.n_e_points));
  for (idx i = 0; i < opt_.n_e_points; ++i)
    res.e_grid[static_cast<std::size_t>(i)] =
        (opt_.n_e_points == 1)
            ? 0.5 * (e_lo + e_hi)
            : e_lo + (e_hi - e_lo) * static_cast<double>(i) /
                         static_cast<double>(opt_.n_e_points - 1);

  // M and dM blocks per internal band. The external set is tiny and fixed,
  // so its real-space functions (psi_l from the mtxel cache, d psi_l
  // transformed here) are hoisted out of the band loop — dm_matrix's
  // per-band compute_pair_raw calls would re-transform them N_b times.
  // Each dM element then sums its two product terms IN REAL SPACE and pays
  // a single FFT (compute_pair_sum_realspace), cutting the stage from
  // 3 * N_Sigma * 2 FFTs per band to N_Sigma + 1.
  std::vector<ZMatrix> m_all(static_cast<std::size_t>(wf.n_bands()));
  std::vector<ZMatrix> dm_all(static_cast<std::size_t>(wf.n_bands()));
  {
    obs::Span scope(gw_.timers(),"gwpt_mtxel");
    const Mtxel& mt = gw_.mtxel();
    const idx box = mt.box().size();
    const std::size_t ne = bands.size();
    std::vector<std::vector<cplx>> psi_l(ne), dpsi_l(ne);
    for (std::size_t i = 0; i < ne; ++i) {
      // Copy out of the cache: later cached transforms may evict.
      psi_l[i] = mt.band_realspace(bands[i]);
      dpsi_l[i].resize(static_cast<std::size_t>(box));
      mt.to_realspace(dpsi.row(bands[i]), dpsi_l[i].data());
    }
    std::vector<cplx> dpsi_n(static_cast<std::size_t>(box));
    for (idx n = 0; n < wf.n_bands(); ++n) {
      m_all[static_cast<std::size_t>(n)] = gw_.m_matrix_right(bands, n);
      // psi_n is hot in the cache from m_matrix_right's pairs; the
      // reference stays valid through the uncached calls below.
      const std::vector<cplx>& psi_n = mt.band_realspace(n);
      mt.to_realspace(dpsi.row(n), dpsi_n.data());
      ZMatrix dm(static_cast<idx>(ne), gw_.n_g());
      for (std::size_t i = 0; i < ne; ++i) {
        // dM_{ln} = M(d psi_l, psi_n) + M(psi_l, d psi_n), one FFT.
        const Mtxel::RealspacePair terms[2] = {
            {dpsi_l[i].data(), psi_n.data()},
            {psi_l[i].data(), dpsi_n.data()}};
        mt.compute_pair_sum_realspace(terms, dm.row(static_cast<idx>(i)));
      }
      dm_all[static_cast<std::size_t>(n)] = std::move(dm);
    }
  }

  // Eq. 5 contraction via the off-diag GPP kernel machinery.
  {
    obs::Span scope(gw_.timers(),"gwpt_gpp_kernel");
    const GppOffdiagKernel kernel(gw_.gpp(), gw_.coulomb());
    res.dsigma = kernel.compute_perturbed(m_all, dm_all, wf.energy,
                                          wf.n_valence, res.e_grid, opt_.gemm,
                                          flops);
  }

  // g_GW at the middle grid energy.
  const std::size_t mid = res.dsigma.size() / 2;
  res.g_gw = res.g_dfpt;
  for (idx i = 0; i < ns; ++i)
    for (idx j = 0; j < ns; ++j) res.g_gw(i, j) += res.dsigma[mid](i, j);
  return res;
}

std::vector<GwptResult> GwptCalculation::run_all(
    const std::vector<Perturbation>& ps, const std::vector<idx>& bands,
    FlopCounter* flops) {
  std::vector<GwptResult> out;
  out.reserve(ps.size());
  for (const Perturbation& p : ps) out.push_back(run_perturbation(p, bands, flops));
  return out;
}

}  // namespace xgw

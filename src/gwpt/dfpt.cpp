#include "gwpt/dfpt.h"

#include <cmath>

#include "common/error.h"
#include "la/gemm.h"

namespace xgw {

ZMatrix dv_matrix(const EpmModel& model, const GSphere& sphere,
                  const Perturbation& p) {
  const idx n = sphere.size();
  ZMatrix dv(n, n);
  for (idx g = 0; g < n; ++g) {
    const IVec3 mg = sphere.miller(g);
    for (idx gp = 0; gp < n; ++gp) {
      const IVec3 mgp = sphere.miller(gp);
      dv(g, gp) = model.dv_dr({mg[0] - mgp[0], mg[1] - mgp[1], mg[2] - mgp[2]},
                              p.atom, p.axis);
    }
  }
  return dv;
}

ZMatrix dv_band_matrix(const Wavefunctions& wf, const ZMatrix& dv) {
  const idx nb = wf.n_bands();
  const idx ng = wf.n_pw();
  XGW_REQUIRE(dv.rows() == ng && dv.cols() == ng,
              "dv_band_matrix: dV shape mismatch");
  // <m|dV|n> = C* dV C^T with C rows = bands: tmp = dV C^T, out = conj(C) tmp.
  ZMatrix tmp(ng, nb);
  zgemm(Op::kNone, Op::kTrans, cplx{1.0, 0.0}, dv, wf.coeff, cplx{}, tmp);
  ZMatrix out(nb, nb);
  // out(m, n) = sum_g conj(C(m, g)) tmp(g, n)
  ZMatrix cc(nb, ng);
  for (idx m = 0; m < nb; ++m)
    for (idx g = 0; g < ng; ++g) cc(m, g) = std::conj(wf.coeff(m, g));
  zgemm(Op::kNone, Op::kNone, cplx{1.0, 0.0}, cc, tmp, cplx{}, out);
  return out;
}

ZMatrix dpsi_sum_over_states(const Wavefunctions& wf, const ZMatrix& dv,
                             double degen_tol) {
  const idx nb = wf.n_bands();
  const idx ng = wf.n_pw();
  const ZMatrix dvb = dv_band_matrix(wf, dv);

  ZMatrix dpsi(nb, ng);
  for (idx n = 0; n < nb; ++n) {
    const double en = wf.energy[static_cast<std::size_t>(n)];
    for (idx m = 0; m < nb; ++m) {
      if (m == n) continue;
      const double em = wf.energy[static_cast<std::size_t>(m)];
      if (std::abs(en - em) < degen_tol) continue;
      const cplx coef = dvb(m, n) / (en - em);
      if (coef == cplx{}) continue;
      const cplx* psim = wf.coeff.row(m);
      cplx* dst = dpsi.row(n);
      for (idx g = 0; g < ng; ++g) dst[g] += coef * psim[g];
    }
  }
  return dpsi;
}

std::vector<cplx> dpsi_sternheimer(const PwHamiltonian& h,
                                   const Wavefunctions& wf, const ZMatrix& dv,
                                   idx band, const SternheimerOptions& opt) {
  const idx ng = h.n_pw();
  XGW_REQUIRE(band >= 0 && band < wf.n_bands(), "sternheimer: band range");
  const double en = wf.energy[static_cast<std::size_t>(band)];

  // Bands (near-)degenerate with `band` span the projected-out subspace.
  std::vector<idx> degen;
  for (idx m = 0; m < wf.n_bands(); ++m)
    if (std::abs(wf.energy[static_cast<std::size_t>(m)] - en) < opt.degen_tol)
      degen.push_back(m);

  // RHS: b = -(dV |psi_n>).
  std::vector<cplx> b(static_cast<std::size_t>(ng), cplx{});
  const cplx* psin = wf.coeff.row(band);
  for (idx g = 0; g < ng; ++g) {
    cplx acc{};
    const cplx* row = dv.row(g);
    for (idx gp = 0; gp < ng; ++gp) acc += row[gp] * psin[gp];
    b[static_cast<std::size_t>(g)] = -acc;
  }
  return sternheimer_solve(h, wf, en, std::move(b), degen, opt);
}

}  // namespace xgw

#pragma once

// DFPT substrate for GWPT (Sec. 5.1 / Fig. 1a of the paper).
//
// An atomic displacement R_p perturbs the mean-field potential by dV/dR_p
// (analytic for the EPM substrate). First-order wavefunction responses
// d psi_n are obtained two ways:
//  * sum-over-states: |d psi_n> = sum_{m != n} |psi_m> <m|dV|n> / (E_n-E_m)
//    — exact when all bands are available (our dense Parabands path);
//    degenerate partners are excluded (their admixture is pure gauge and
//    cancels in all GWPT observables summed over complete multiplets).
//  * Sternheimer: (H - E_n) |d psi_n> = -P_c dV |psi_n> solved by conjugate
//    gradients with the projector P_c = 1 - sum_occ |psi><psi| — the
//    production DFPT route that avoids empty states; cross-validated
//    against sum-over-states in tests.

#include "mf/epm.h"
#include "mf/hamiltonian.h"
#include "mf/sternheimer.h"
#include "mf/wavefunctions.h"

namespace xgw {

/// One displacement degree of freedom: atom `ia` along cartesian `axis`.
/// A phonon-mode perturbation is a linear combination handled by callers.
struct Perturbation {
  idx atom = 0;
  int axis = 0;
};

/// Dense perturbation matrix dV(G, G') = dV/dR(G - G') on the psi sphere.
ZMatrix dv_matrix(const EpmModel& model, const GSphere& sphere,
                  const Perturbation& p);

/// <m| dV |n> in the band basis (rows/cols over all wf bands).
ZMatrix dv_band_matrix(const Wavefunctions& wf, const ZMatrix& dv);

/// Sum-over-states d psi for ALL bands (rows). `degen_tol` excludes
/// near-degenerate partners from the sum.
ZMatrix dpsi_sum_over_states(const Wavefunctions& wf, const ZMatrix& dv,
                             double degen_tol = 1e-6);

/// Sternheimer solve of d psi_n for band n: projects the right-hand side
/// -dV|psi_n> onto the complement of the (near-)degenerate subspace of n
/// and solves the projected linear system.
std::vector<cplx> dpsi_sternheimer(const PwHamiltonian& h,
                                   const Wavefunctions& wf, const ZMatrix& dv,
                                   idx band, const SternheimerOptions& opt = {});

}  // namespace xgw

#include "gwpt/phonons.h"

#include <cmath>
#include <map>

#include "common/error.h"
#include "la/eig.h"
#include "mf/solver.h"

namespace xgw {

double species_mass_au(const std::string& name) {
  // amu -> electron masses.
  constexpr double kAmu = 1822.888486209;
  static const std::map<std::string, double> table{
      {"H", 1.008},  {"Li", 6.94},   {"B", 10.81},
      {"N", 14.007}, {"Si", 28.0855}};
  const auto it = table.find(name);
  XGW_REQUIRE(it != table.end(), "species_mass_au: unknown species " + name);
  return it->second * kAmu;
}

std::vector<Vec3> hellmann_feynman_forces(const EpmModel& model,
                                          const GSphere& sphere,
                                          const Wavefunctions& wf) {
  const idx natoms = model.crystal().n_atoms();
  std::vector<Vec3> forces(static_cast<std::size_t>(natoms), Vec3{0, 0, 0});

  for (idx a = 0; a < natoms; ++a) {
    for (int ax = 0; ax < 3; ++ax) {
      const ZMatrix dv = dv_matrix(model, sphere, {a, ax});
      // F = -2 sum_v <v|dV|v> (spin factor 2; diagonal elements are real).
      double f = 0.0;
      for (idx v = 0; v < wf.n_valence; ++v) {
        const cplx* cv = wf.coeff.row(v);
        cplx acc{};
        for (idx g = 0; g < wf.n_pw(); ++g) {
          cplx row{};
          const cplx* dvrow = dv.row(g);
          for (idx gp = 0; gp < wf.n_pw(); ++gp) row += dvrow[gp] * cv[gp];
          acc += std::conj(cv[g]) * row;
        }
        f -= 2.0 * acc.real();
      }
      forces[static_cast<std::size_t>(a)][static_cast<std::size_t>(ax)] = f;
    }
  }
  return forces;
}

DMatrix force_constants(const EpmModel& model, double cutoff, double delta) {
  const idx natoms = model.crystal().n_atoms();
  const idx n = 3 * natoms;
  DMatrix phi(n, n);

  auto forces_at = [&](idx a, int ax, double d) {
    Vec3 disp{0, 0, 0};
    disp[static_cast<std::size_t>(ax)] = d;
    const EpmModel displaced = model.displaced(a, disp);
    const PwHamiltonian h(displaced, cutoff);
    const Wavefunctions wf =
        solve_dense(h, displaced.n_valence_bands() + 1);
    return hellmann_feynman_forces(displaced, h.sphere(), wf);
  };

  for (idx a = 0; a < natoms; ++a) {
    for (int ax = 0; ax < 3; ++ax) {
      const auto fp = forces_at(a, ax, delta);
      const auto fm = forces_at(a, ax, -delta);
      const idx col = 3 * a + ax;
      for (idx b = 0; b < natoms; ++b) {
        for (int bx = 0; bx < 3; ++bx) {
          const double df =
              (fp[static_cast<std::size_t>(b)][static_cast<std::size_t>(bx)] -
               fm[static_cast<std::size_t>(b)][static_cast<std::size_t>(bx)]) /
              (2.0 * delta);
          phi(3 * b + bx, col) = -df;
        }
      }
    }
  }

  // Symmetrize (finite-difference noise) and enforce the acoustic sum rule:
  // sum_b Phi[(b,beta)][(a,alpha)] = 0 (rigid translations cost nothing).
  for (idx i = 0; i < n; ++i)
    for (idx j = i + 1; j < n; ++j) {
      const double s = 0.5 * (phi(i, j) + phi(j, i));
      phi(i, j) = s;
      phi(j, i) = s;
    }
  for (idx j = 0; j < n; ++j) {
    for (int beta = 0; beta < 3; ++beta) {
      double total = 0.0;
      for (idx b = 0; b < natoms; ++b) total += phi(3 * b + beta, j);
      // Distribute the violation onto the diagonal-atom entry.
      const idx a_of_j = j / 3;
      phi(3 * a_of_j + beta, j) -= total;
    }
  }
  return phi;
}

PhononModes phonon_modes(const EpmModel& model, const DMatrix& phi) {
  const idx natoms = model.crystal().n_atoms();
  const idx n = 3 * natoms;
  XGW_REQUIRE(phi.rows() == n && phi.cols() == n,
              "phonon_modes: force-constant shape mismatch");

  std::vector<double> inv_sqrt_m(static_cast<std::size_t>(natoms));
  for (idx a = 0; a < natoms; ++a) {
    const std::string& name = model.crystal().species_name(
        model.crystal().atoms()[static_cast<std::size_t>(a)].species);
    inv_sqrt_m[static_cast<std::size_t>(a)] =
        1.0 / std::sqrt(species_mass_au(name));
  }

  ZMatrix d(n, n);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j)
      d(i, j) = phi(i, j) * inv_sqrt_m[static_cast<std::size_t>(i / 3)] *
                inv_sqrt_m[static_cast<std::size_t>(j / 3)];

  const EigResult eig = heev(d);
  PhononModes out;
  out.omega.resize(static_cast<std::size_t>(n));
  out.eigenvectors = DMatrix(n, n);
  for (idx nu = 0; nu < n; ++nu) {
    const double w2 = eig.values[static_cast<std::size_t>(nu)];
    out.omega[static_cast<std::size_t>(nu)] =
        (w2 >= 0.0) ? std::sqrt(w2) : -std::sqrt(-w2);
    for (idx i = 0; i < n; ++i)
      out.eigenvectors(i, nu) = eig.vectors(i, nu).real();
  }
  return out;
}

std::vector<ModeCoupling> mode_couplings(
    const EpmModel& model, const PhononModes& modes,
    const std::vector<GwptResult>& per_displacement, double omega_min) {
  const idx natoms = model.crystal().n_atoms();
  const idx n = 3 * natoms;
  XGW_REQUIRE(static_cast<idx>(per_displacement.size()) == n,
              "mode_couplings: need one GWPT result per displacement");
  XGW_REQUIRE(modes.n_modes() == n, "mode_couplings: mode count mismatch");

  // Index per-displacement results by (atom, axis).
  std::vector<const GwptResult*> by_dof(static_cast<std::size_t>(n), nullptr);
  for (const GwptResult& r : per_displacement) {
    const idx dof = 3 * r.perturbation.atom + r.perturbation.axis;
    XGW_REQUIRE(dof >= 0 && dof < n && by_dof[static_cast<std::size_t>(dof)] == nullptr,
                "mode_couplings: duplicate or bad perturbation");
    by_dof[static_cast<std::size_t>(dof)] = &r;
  }

  const idx ns = per_displacement[0].g_dfpt.rows();
  std::vector<ModeCoupling> out;
  for (idx nu = 0; nu < n; ++nu) {
    const double w = modes.omega[static_cast<std::size_t>(nu)];
    if (w <= omega_min) continue;  // skip acoustic / unstable modes
    ModeCoupling mc;
    mc.mode = nu;
    mc.omega = w;
    mc.g_dfpt = ZMatrix(ns, ns);
    mc.g_gw = ZMatrix(ns, ns);
    for (idx dof = 0; dof < n; ++dof) {
      const idx a = dof / 3;
      const std::string& name = model.crystal().species_name(
          model.crystal().atoms()[static_cast<std::size_t>(a)].species);
      const double mass = species_mass_au(name);
      // Cartesian eigendisplacement: u = e / sqrt(M); zero-point factor
      // 1/sqrt(2 omega) completes the standard vertex.
      const double coef = modes.eigenvectors(dof, nu) /
                          (std::sqrt(mass) * std::sqrt(2.0 * w));
      if (coef == 0.0) continue;
      const GwptResult& r = *by_dof[static_cast<std::size_t>(dof)];
      for (idx i = 0; i < ns; ++i)
        for (idx j = 0; j < ns; ++j) {
          mc.g_dfpt(i, j) += coef * r.g_dfpt(i, j);
          mc.g_gw(i, j) += coef * r.g_gw(i, j);
        }
    }
    out.push_back(std::move(mc));
  }
  return out;
}

}  // namespace xgw

#pragma once

// Complex FFTs implemented from scratch (no FFTW dependency).
//
// The MTXEL kernel of the paper computes plane-wave matrix elements
// M^G_{mn} = <m| e^{iG r} |n> by Fourier-transforming real-space
// wavefunction products; it is one of the lower-scaling kernels whose weak
// scaling degrades in Fig. 3. xgw implements a mixed-radix (2, 3, 5, generic
// prime) decimation-in-time FFT with per-size cached plans, and 3-D
// transforms over row-major boxes.

#include <memory>
#include <vector>

#include "common/types.h"
#include "la/matrix.h"
#include "mem/tracker.h"

namespace xgw {

/// FFT buffers are tracked under mem::Tag::kFft and must NEVER live on a
/// workspace arena: plans are cached process-wide and the transform
/// workspaces are thread_local, so both outlive any mem::ArenaScope.
using FftVector =
    std::vector<cplx, mem::TrackedAllocator<cplx, mem::Tag::kFft,
                                            mem::Route::kNeverArena>>;

enum class FftDirection { kForward, kBackward };

/// One-dimensional FFT plan for a fixed length. Forward applies
/// X_k = sum_j x_j e^{-2 pi i jk/n}; backward uses e^{+...} and does NOT
/// normalize (callers scale by 1/n where required, matching FFTW).
class Fft1dPlan {
 public:
  explicit Fft1dPlan(idx n);

  idx size() const { return n_; }

  /// In-place transform of a contiguous line of length n. Thread-safe:
  /// workspaces are thread_local, so one shared plan serves all OpenMP
  /// threads (the MTXEL kernel transforms many wavefunction products in
  /// parallel).
  void transform(cplx* data, FftDirection dir) const;

 private:
  void recurse(const cplx* in, cplx* out, idx n, idx in_stride,
               const cplx* roots, cplx* scratch) const;

  idx n_;
  std::vector<idx> factors_;
  FftVector roots_fwd_;  // e^{-2 pi i j / n}
  FftVector roots_bwd_;  // e^{+2 pi i j / n}
};

/// Integer box dimensions of a 3-D FFT grid.
struct FftBox {
  idx n1 = 0, n2 = 0, n3 = 0;
  idx size() const { return n1 * n2 * n3; }
  bool operator==(const FftBox&) const = default;
};

/// 3-D FFT over a row-major box: data[(i1*n2 + i2)*n3 + i3].
/// Backward is unnormalized; `backward_normalized` divides by the box size
/// (the convention used by the wavefunction G->r transforms).
class Fft3d {
 public:
  explicit Fft3d(FftBox box);

  const FftBox& box() const { return box_; }

  void forward(cplx* data) const { transform(data, FftDirection::kForward); }
  void backward(cplx* data) const { transform(data, FftDirection::kBackward); }
  void backward_normalized(cplx* data) const;

  void transform(cplx* data, FftDirection dir) const;

 private:
  FftBox box_;
  std::shared_ptr<Fft1dPlan> plan1_, plan2_, plan3_;
};

/// Process-wide plan cache: FFT plans are immutable after construction and
/// shared freely.
std::shared_ptr<Fft1dPlan> get_fft_plan(idx n);

/// Smallest 2,3,5-smooth integer >= n (FFT-friendly grid sizing, the same
/// convention plane-wave DFT codes use for their charge-density grids).
idx next_fast_size(idx n);

}  // namespace xgw

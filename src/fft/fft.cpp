#include "fft/fft.h"

#include <cmath>
#include <map>
#include <mutex>

#include "common/error.h"

namespace xgw {

namespace {

std::vector<idx> factorize(idx n) {
  std::vector<idx> factors;
  for (idx f : {idx{2}, idx{3}, idx{5}}) {
    while (n % f == 0) {
      factors.push_back(f);
      n /= f;
    }
  }
  for (idx f = 7; f * f <= n; f += 2) {
    while (n % f == 0) {
      factors.push_back(f);
      n /= f;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

}  // namespace

Fft1dPlan::Fft1dPlan(idx n) : n_(n), factors_(factorize(n)) {
  XGW_REQUIRE(n >= 1, "FFT length must be >= 1");
  roots_fwd_.resize(static_cast<std::size_t>(n));
  roots_bwd_.resize(static_cast<std::size_t>(n));
  for (idx j = 0; j < n; ++j) {
    const double ang = -kTwoPi * static_cast<double>(j) / static_cast<double>(n);
    roots_fwd_[static_cast<std::size_t>(j)] = {std::cos(ang), std::sin(ang)};
    roots_bwd_[static_cast<std::size_t>(j)] =
        std::conj(roots_fwd_[static_cast<std::size_t>(j)]);
  }
}

void Fft1dPlan::recurse(const cplx* in, cplx* out, idx n, idx in_stride,
                        const cplx* roots, cplx* scratch) const {
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  // Smallest factor of this level's length.
  idx r = n;
  for (idx f : factors_) {
    if (n % f == 0) {
      r = f;
      break;
    }
  }
  const idx m = n / r;

  // r interleaved sub-transforms, each written contiguously into out.
  for (idx q = 0; q < r; ++q)
    recurse(in + q * in_stride, out + q * m, m, in_stride * r, roots, scratch);

  // Combine: X[q2*m + k] = sum_q out[q*m + k] * w_n^{q (q2*m + k)}, where
  // w_n = roots[step], step = n_ / n (roots table holds powers of w_{n_}).
  const idx step = n_ / n;
  for (idx k = 0; k < m; ++k) {
    for (idx q2 = 0; q2 < r; ++q2) {
      const idx freq = q2 * m + k;
      cplx acc{};
      for (idx q = 0; q < r; ++q) {
        const idx tw_idx = (q * freq % n) * step;
        acc += out[q * m + k] * roots[tw_idx];
      }
      scratch[freq] = acc;
    }
  }
  for (idx i = 0; i < n; ++i) out[i] = scratch[i];
}

void Fft1dPlan::transform(cplx* data, FftDirection dir) const {
  if (n_ == 1) return;
  thread_local FftVector work, scratch;
  if (static_cast<idx>(work.size()) < n_) {
    work.resize(static_cast<std::size_t>(n_));
    scratch.resize(static_cast<std::size_t>(n_));
  }
  const cplx* roots =
      (dir == FftDirection::kForward) ? roots_fwd_.data() : roots_bwd_.data();
  recurse(data, work.data(), n_, 1, roots, scratch.data());
  for (idx i = 0; i < n_; ++i) data[i] = work[static_cast<std::size_t>(i)];
}

Fft3d::Fft3d(FftBox box)
    : box_(box),
      plan1_(get_fft_plan(box.n1)),
      plan2_(get_fft_plan(box.n2)),
      plan3_(get_fft_plan(box.n3)) {
  XGW_REQUIRE(box.n1 >= 1 && box.n2 >= 1 && box.n3 >= 1,
              "FFT box dimensions must be >= 1");
}

void Fft3d::transform(cplx* data, FftDirection dir) const {
  const idx n1 = box_.n1, n2 = box_.n2, n3 = box_.n3;

  // Axis 3 (contiguous lines).
  for (idx i = 0; i < n1 * n2; ++i) plan3_->transform(data + i * n3, dir);

  // Axis 2 (stride n3 within each i1 plane). The gather line is a grown-on
  // -demand thread_local so steady-state transforms perform zero heap
  // allocations (test_mem asserts this across whole chi iterations).
  thread_local FftVector line;
  if (static_cast<idx>(line.size()) < std::max(n1, n2))
    line.resize(static_cast<std::size_t>(std::max(n1, n2)));
  for (idx i1 = 0; i1 < n1; ++i1) {
    cplx* plane = data + i1 * n2 * n3;
    for (idx i3 = 0; i3 < n3; ++i3) {
      for (idx i2 = 0; i2 < n2; ++i2)
        line[static_cast<std::size_t>(i2)] = plane[i2 * n3 + i3];
      plan2_->transform(line.data(), dir);
      for (idx i2 = 0; i2 < n2; ++i2)
        plane[i2 * n3 + i3] = line[static_cast<std::size_t>(i2)];
    }
  }

  // Axis 1 (stride n2*n3).
  const idx stride1 = n2 * n3;
  for (idx i23 = 0; i23 < n2 * n3; ++i23) {
    for (idx i1 = 0; i1 < n1; ++i1)
      line[static_cast<std::size_t>(i1)] = data[i1 * stride1 + i23];
    plan1_->transform(line.data(), dir);
    for (idx i1 = 0; i1 < n1; ++i1)
      data[i1 * stride1 + i23] = line[static_cast<std::size_t>(i1)];
  }
}

void Fft3d::backward_normalized(cplx* data) const {
  transform(data, FftDirection::kBackward);
  const double inv = 1.0 / static_cast<double>(box_.size());
  for (idx i = 0; i < box_.size(); ++i) data[i] *= inv;
}

std::shared_ptr<Fft1dPlan> get_fft_plan(idx n) {
  static std::mutex mutex;
  static std::map<idx, std::shared_ptr<Fft1dPlan>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = cache[n];
  if (!slot) slot = std::make_shared<Fft1dPlan>(n);
  return slot;
}

idx next_fast_size(idx n) {
  XGW_REQUIRE(n >= 1, "next_fast_size: n must be >= 1");
  for (idx candidate = n;; ++candidate) {
    idx rem = candidate;
    for (idx f : {idx{2}, idx{3}, idx{5}})
      while (rem % f == 0) rem /= f;
    if (rem == 1) return candidate;
  }
}

}  // namespace xgw

#include "pseudobands/pseudobands.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace xgw {

SlicePlan plan_slices(const std::vector<double>& energies, idx n_valence,
                      const PseudobandsOptions& opt) {
  const idx nb = static_cast<idx>(energies.size());
  XGW_REQUIRE(nb >= 1, "plan_slices: empty band set");
  XGW_REQUIRE(opt.first_slice_width > 0.0 && opt.slice_growth >= 1.0,
              "plan_slices: bad slice parameters");

  double protect_top = opt.e_protect_top;
  if (protect_top <= -1e299) {
    const idx last_protected =
        std::min(nb - 1, n_valence + opt.protect_conduction - 1);
    protect_top = energies[static_cast<std::size_t>(last_protected)] + 1e-12;
  }

  SlicePlan plan;
  idx i = 0;
  while (i < nb && energies[static_cast<std::size_t>(i)] <= protect_top) ++i;
  plan.n_protected = i;

  double width = opt.first_slice_width;
  double slice_top =
      (i < nb ? energies[static_cast<std::size_t>(i)] : 0.0) + width;
  Slice cur{i, i, 0.0};
  for (; i < nb; ++i) {
    const double e = energies[static_cast<std::size_t>(i)];
    if (e > slice_top && cur.count() > 0) {
      plan.slices.push_back(cur);
      width *= opt.slice_growth;
      slice_top = e + width;
      cur = Slice{i, i, 0.0};
    }
    cur.last = i + 1;
  }
  if (cur.count() > 0) plan.slices.push_back(cur);

  for (Slice& s : plan.slices) {
    double acc = 0.0;
    for (idx n = s.first; n < s.last; ++n)
      acc += energies[static_cast<std::size_t>(n)];
    s.e_avg = acc / static_cast<double>(s.count());
  }
  return plan;
}

Wavefunctions build_pseudobands(const Wavefunctions& wf,
                                const PseudobandsOptions& opt) {
  const SlicePlan plan = plan_slices(wf.energy, wf.n_valence, opt);
  XGW_REQUIRE(plan.n_protected >= wf.n_valence,
              "build_pseudobands: protection region must cover valence bands");

  idx n_out = plan.n_protected;
  for (const Slice& s : plan.slices)
    n_out += std::min<idx>(opt.n_xi, s.count());

  Wavefunctions out;
  out.coeff = ZMatrix(n_out, wf.n_pw());
  out.energy.resize(static_cast<std::size_t>(n_out));
  out.n_valence = wf.n_valence;

  // Protected states: verbatim copy.
  for (idx n = 0; n < plan.n_protected; ++n) {
    for (idx g = 0; g < wf.n_pw(); ++g) out.coeff(n, g) = wf.coeff(n, g);
    out.energy[static_cast<std::size_t>(n)] =
        wf.energy[static_cast<std::size_t>(n)];
  }

  Rng rng(opt.seed);
  idx row = plan.n_protected;
  for (const Slice& s : plan.slices) {
    const idx nxi = std::min<idx>(opt.n_xi, s.count());
    Rng slice_rng = rng.split();
    const double inv_sqrt = 1.0 / std::sqrt(static_cast<double>(nxi));
    for (idx j = 0; j < nxi; ++j) {
      cplx* dst = out.coeff.row(row);
      for (idx n = s.first; n < s.last; ++n) {
        const cplx phase = slice_rng.unit_phase();
        const cplx* src = wf.coeff.row(n);
        for (idx g = 0; g < wf.n_pw(); ++g) dst[g] += phase * src[g];
      }
      for (idx g = 0; g < wf.n_pw(); ++g) dst[g] *= inv_sqrt;
      out.energy[static_cast<std::size_t>(row)] = s.e_avg;
      ++row;
    }
  }
  XGW_REQUIRE(row == n_out, "build_pseudobands: row accounting error");
  return out;
}

double compression_ratio(const Wavefunctions& original,
                         const Wavefunctions& compressed) {
  return static_cast<double>(original.n_bands()) /
         static_cast<double>(compressed.n_bands());
}

}  // namespace xgw

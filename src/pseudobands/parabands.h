#pragma once

// Parabands: Chebyshev-filtered subspace iteration for generating large
// band sets.
//
// The paper's workflow needs tens of thousands of bands — "a challenge for
// iterative solvers in most DFT codes. BerkeleyGW provides a Parabands
// module that can generate a large set of wavefunctions". This is that
// module's algorithmic core: a block of random vectors is repeatedly
// filtered by a Jackson-damped Chebyshev polynomial of H that amplifies
// the target window, orthonormalized, and Rayleigh-Ritz rotated. Only
// matrix-free H applications are needed, and the block converges to the
// lowest n_bands eigenpairs; dense diagonalization and block-Davidson
// (mf/solver.h) serve as cross-validation references in the tests.

#include "mf/hamiltonian.h"
#include "mf/wavefunctions.h"

namespace xgw {

struct ParabandsOptions {
  idx filter_order = 40;   ///< Chebyshev degree per iteration
  idx max_iter = 40;
  double residual_tol = 1e-7;  ///< max ||H x - theta x|| over wanted bands
  idx block_extra = 8;         ///< guard vectors beyond n_bands
  std::uint64_t seed = 424242;
};

/// Lowest n_bands eigenpairs of the plane-wave Hamiltonian by
/// Chebyshev-filtered subspace iteration.
Wavefunctions solve_parabands(const PwHamiltonian& h, idx n_bands,
                              const ParabandsOptions& opt = {});

}  // namespace xgw

#pragma once

// Mixed stochastic-deterministic pseudobands (Sec. 5.3 of the paper;
// Altman, Kundu & da Jornada, PRL 132, 086401 (2024)).
//
// The Kohn-Sham spectrum is partitioned into a PROTECTION region P around
// the Fermi energy (states kept exactly) and energy slices {S} whose width
// grows geometrically. Each slice's states are replaced by N_xi stochastic
// superpositions
//   |xi_j^S> = (1/sqrt(N_xi)) sum_{n in S} e^{2 pi i theta_n^j} |psi_n>,
// carrying the slice's average energy. Because sum_j |xi_j><xi_j| is an
// unbiased estimator of sum_{n in S} |psi_n><psi_n|, the GW sums over bands
// (Eqs. 2 and 4) are preserved in expectation while the band count drops
// EXPONENTIALLY with energy — slices do not scale with system size.

#include "common/rng.h"
#include "mf/wavefunctions.h"

namespace xgw {

struct PseudobandsOptions {
  /// States with E < E_protect_top are kept exactly. Defaults (<= -1e30)
  /// to protecting all valence bands plus `protect_conduction` empty bands.
  double e_protect_top = -1e300;
  idx protect_conduction = 4;   ///< empty bands kept exactly (when auto)
  double first_slice_width = 0.05;  ///< width of the first slice (Ha)
  double slice_growth = 1.5;        ///< geometric width growth per slice
  idx n_xi = 3;                     ///< stochastic pseudobands per slice
  std::uint64_t seed = 20240101;
};

/// One energy slice: band range [first, last) and its average energy.
struct Slice {
  idx first = 0;
  idx last = 0;
  double e_avg = 0.0;
  idx count() const { return last - first; }
};

/// Partition of a band set into protected states + slices.
struct SlicePlan {
  idx n_protected = 0;
  std::vector<Slice> slices;
};

/// Builds the slice plan from sorted band energies.
SlicePlan plan_slices(const std::vector<double>& energies, idx n_valence,
                      const PseudobandsOptions& opt);

/// Compresses the band set: protected states copied verbatim, each slice
/// replaced by min(N_xi, slice size) stochastic pseudobands.
Wavefunctions build_pseudobands(const Wavefunctions& wf,
                                const PseudobandsOptions& opt = {});

/// Compression diagnostic: N_b(original) / N_b(compressed).
double compression_ratio(const Wavefunctions& original,
                         const Wavefunctions& compressed);

}  // namespace xgw

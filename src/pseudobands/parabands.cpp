#include "pseudobands/parabands.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "la/eig.h"
#include "la/gemm.h"
#include "la/orth.h"
#include "pseudobands/chebyshev.h"

namespace xgw {

Wavefunctions solve_parabands(const PwHamiltonian& h, idx n_bands,
                              const ParabandsOptions& opt) {
  const idx n = h.n_pw();
  XGW_REQUIRE(n_bands >= 1 && n_bands <= n, "parabands: bad band count");
  const idx nb = std::min(n, n_bands + opt.block_extra);

  const double spec_lo = h.spectral_lower_bound();
  const double spec_hi = h.spectral_upper_bound();

  Rng rng(opt.seed);
  ZMatrix x(n, nb);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < nb; ++j) x(i, j) = rng.normal_cplx();
  orthonormalize_columns(x);

  // Initial window estimate: lowest-kinetic heuristic.
  double window_top = spec_lo + 0.3 * (spec_hi - spec_lo);

  std::vector<double> ritz;
  ZMatrix hx(n, nb);
  for (idx it = 0; it < opt.max_iter; ++it) {
    // Filter amplifying [spec_lo, window_top].
    const ChebyshevJacksonFilter filter(spec_lo - 0.05 * (spec_hi - spec_lo),
                                        window_top, spec_lo, spec_hi,
                                        opt.filter_order);
    ZMatrix y = filter.apply(h, x);
    const idx kept = orthonormalize_columns(y, 1e-10);
    if (kept < nb) {
      // Re-seed lost directions.
      ZMatrix fresh(n, nb - kept);
      for (idx i = 0; i < n; ++i)
        for (idx j = 0; j < fresh.cols(); ++j) fresh(i, j) = rng.normal_cplx();
      project_out(y, fresh);
      orthonormalize_columns(fresh, 1e-10);
      ZMatrix merged(n, y.cols() + fresh.cols());
      for (idx i = 0; i < n; ++i) {
        for (idx j = 0; j < y.cols(); ++j) merged(i, j) = y(i, j);
        for (idx j = 0; j < fresh.cols(); ++j)
          merged(i, y.cols() + j) = fresh(i, j);
      }
      y = std::move(merged);
    }

    // Rayleigh-Ritz.
    if (hx.cols() != y.cols()) hx.resize(n, y.cols());
    h.apply_block(y, hx);
    ZMatrix proj(y.cols(), y.cols());
    zgemm(Op::kConjTrans, Op::kNone, cplx{1.0, 0.0}, y, hx, cplx{}, proj);
    const EigResult eig = heev(proj);
    ZMatrix xr(n, y.cols()), hxr(n, y.cols());
    zgemm(Op::kNone, Op::kNone, cplx{1.0, 0.0}, y, eig.vectors, cplx{}, xr);
    zgemm(Op::kNone, Op::kNone, cplx{1.0, 0.0}, hx, eig.vectors, cplx{}, hxr);
    x = std::move(xr);
    hx = std::move(hxr);
    ritz = eig.values;

    // Convergence of the wanted bands.
    double worst = 0.0;
    for (idx j = 0; j < n_bands; ++j) {
      double r2 = 0.0;
      for (idx i = 0; i < n; ++i)
        r2 += std::norm(hx(i, j) - ritz[static_cast<std::size_t>(j)] * x(i, j));
      worst = std::max(worst, std::sqrt(r2));
    }
    if (worst < opt.residual_tol) break;

    // Window: a little above the highest wanted Ritz value.
    const double e_hi_wanted = ritz[static_cast<std::size_t>(n_bands - 1)];
    const double e_buf =
        ritz[static_cast<std::size_t>(std::min<idx>(x.cols(), nb) - 1)];
    window_top = e_hi_wanted + 0.5 * std::max(1e-3, e_buf - e_hi_wanted);
  }

  Wavefunctions wf;
  wf.coeff = ZMatrix(n_bands, n);
  wf.energy.assign(ritz.begin(), ritz.begin() + n_bands);
  for (idx b = 0; b < n_bands; ++b)
    for (idx g = 0; g < n; ++g) wf.coeff(b, g) = x(g, b);
  wf.n_valence = std::min(h.model().n_valence_bands(), n_bands);
  return wf;
}

}  // namespace xgw

#include "pseudobands/chebyshev.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "la/orth.h"

namespace xgw {

ChebyshevJacksonFilter::ChebyshevJacksonFilter(double a, double b,
                                               double spec_lo, double spec_hi,
                                               idx order) {
  XGW_REQUIRE(spec_hi > spec_lo, "ChebyshevJacksonFilter: bad spectral range");
  XGW_REQUIRE(b > a, "ChebyshevJacksonFilter: bad window");
  XGW_REQUIRE(order >= 1, "ChebyshevJacksonFilter: order must be >= 1");
  center_ = 0.5 * (spec_hi + spec_lo);
  halfwidth_ = 0.5 * (spec_hi - spec_lo) * 1.01;  // 1% safety margin

  // Map window edges to [-1, 1].
  const double ta = std::clamp((a - center_) / halfwidth_, -1.0, 1.0);
  const double tb = std::clamp((b - center_) / halfwidth_, -1.0, 1.0);
  const double pa = std::acos(tb);  // note acos is decreasing
  const double pb = std::acos(ta);

  // Chebyshev coefficients of the indicator 1_[ta,tb]:
  //   c_0 = (pb - pa)/pi, c_k = 2 (sin(k pb) - sin(k pa)) / (k pi),
  // damped by the Jackson kernel g_k to suppress Gibbs oscillations.
  const idx n = order + 1;
  coeff_.resize(static_cast<std::size_t>(n));
  coeff_[0] = (pb - pa) / kPi;
  for (idx k = 1; k < n; ++k)
    coeff_[static_cast<std::size_t>(k)] =
        2.0 * (std::sin(static_cast<double>(k) * pb) -
               std::sin(static_cast<double>(k) * pa)) /
        (static_cast<double>(k) * kPi);

  const double np = static_cast<double>(n + 1);
  for (idx k = 0; k < n; ++k) {
    const double x = kPi * static_cast<double>(k) / np;
    const double g =
        ((np - static_cast<double>(k)) * std::cos(x) + std::sin(x) / std::tan(kPi / np)) /
        np;
    coeff_[static_cast<std::size_t>(k)] *= g;
  }
}

double ChebyshevJacksonFilter::evaluate(double e) const {
  const double t = std::clamp((e - center_) / halfwidth_, -1.0, 1.0);
  // Clenshaw-free direct recurrence (order is modest).
  double tkm1 = 1.0, tk = t;
  double acc = coeff_[0];
  if (coeff_.size() > 1) acc += coeff_[1] * t;
  for (std::size_t k = 2; k < coeff_.size(); ++k) {
    const double tkp1 = 2.0 * t * tk - tkm1;
    acc += coeff_[k] * tkp1;
    tkm1 = tk;
    tk = tkp1;
  }
  return acc;
}

ZMatrix ChebyshevJacksonFilter::apply(const PwHamiltonian& h,
                                      const ZMatrix& x) const {
  const idx n = h.n_pw();
  XGW_REQUIRE(x.rows() == n, "ChebyshevJacksonFilter: vector size mismatch");
  const idx m = x.cols();
  const double ic = center_, ih = 1.0 / halfwidth_;

  // Three-term recurrence on columns: T_0 = X, T_1 = Hs X,
  // T_{k+1} = 2 Hs T_k - T_{k-1}, with Hs = (H - center)/halfwidth.
  auto apply_hs = [&](const ZMatrix& in, ZMatrix& out) {
    h.apply_block(in, out);
    for (idx i = 0; i < n; ++i)
      for (idx j = 0; j < m; ++j) out(i, j) = (out(i, j) - ic * in(i, j)) * ih;
  };

  ZMatrix tkm1 = x;
  ZMatrix acc(n, m);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < m; ++j) acc(i, j) = coeff_[0] * x(i, j);

  if (coeff_.size() == 1) return acc;

  ZMatrix tk(n, m);
  apply_hs(x, tk);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < m; ++j) acc(i, j) += coeff_[1] * tk(i, j);

  ZMatrix tkp1(n, m), htk(n, m);
  for (std::size_t k = 2; k < coeff_.size(); ++k) {
    apply_hs(tk, htk);
    for (idx i = 0; i < n; ++i)
      for (idx j = 0; j < m; ++j) {
        tkp1(i, j) = 2.0 * htk(i, j) - tkm1(i, j);
        acc(i, j) += coeff_[k] * tkp1(i, j);
      }
    std::swap(tkm1, tk);
    std::swap(tk, tkp1);
  }
  return acc;
}

ZMatrix chebyshev_pseudobands(const PwHamiltonian& h, double a, double b,
                              idx n_xi, idx order, const ZMatrix& protect_rows,
                              std::vector<double>& energies_out,
                              std::uint64_t seed) {
  const idx n = h.n_pw();
  XGW_REQUIRE(n_xi >= 1, "chebyshev_pseudobands: n_xi must be >= 1");
  const ChebyshevJacksonFilter filter(a, b, h.spectral_lower_bound(),
                                      h.spectral_upper_bound(), order);

  Rng rng(seed);
  ZMatrix x(n, n_xi);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n_xi; ++j) x(i, j) = rng.normal_cplx();

  ZMatrix filtered = filter.apply(h, x);

  // Remove protected-state components (columns of protect^T).
  if (protect_rows.rows() > 0) {
    ZMatrix basis(n, protect_rows.rows());
    for (idx b2 = 0; b2 < protect_rows.rows(); ++b2)
      for (idx g = 0; g < n; ++g) basis(g, b2) = protect_rows(b2, g);
    project_out(basis, filtered);
  }
  orthonormalize_columns(filtered, 1e-8);

  // Rayleigh-quotient energies.
  const idx kept = filtered.cols();
  ZMatrix hf(n, kept);
  h.apply_block(filtered, hf);
  energies_out.assign(static_cast<std::size_t>(kept), 0.0);
  for (idx j = 0; j < kept; ++j) {
    cplx e{};
    for (idx i = 0; i < n; ++i) e += std::conj(filtered(i, j)) * hf(i, j);
    energies_out[static_cast<std::size_t>(j)] = e.real();
  }

  // Return as rows.
  ZMatrix rows(kept, n);
  for (idx j = 0; j < kept; ++j)
    for (idx i = 0; i < n; ++i) rows(j, i) = filtered(i, j);
  return rows;
}

}  // namespace xgw

#pragma once

// Chebyshev-Jackson spectral projection (Sec. 5.3 of the paper).
//
// Constructing pseudobands from eigenstates would require the O(N^3) full
// diagonalization the method is meant to avoid. Instead a pseudoband is a
// random vector projected onto the slice's spectral subspace,
//   |xi_j^S> := f^S(H) |x_j>,   f^S(H) = sum_{n in S} |psi_n><psi_n|,
// with f^S approximated by a Jackson-damped Chebyshev expansion of the
// indicator function of the slice's energy window [a, b] — a pure
// matrix-vector recurrence costing O(order) H-applies per vector
// (references [42, 43] of the paper: kernel polynomial method, spectrum
// slicing).

#include "la/matrix.h"
#include "mf/hamiltonian.h"

namespace xgw {

/// Jackson-damped Chebyshev approximation of the indicator of [a, b] inside
/// the spectral interval [spec_lo, spec_hi].
class ChebyshevJacksonFilter {
 public:
  ChebyshevJacksonFilter(double a, double b, double spec_lo, double spec_hi,
                         idx order);

  idx order() const { return static_cast<idx>(coeff_.size()) - 1; }

  /// Scalar evaluation f(e) — diagnostics and tests.
  double evaluate(double e) const;

  /// Y = f(H) X column-wise via the three-term Chebyshev recurrence on the
  /// affinely mapped operator (2H - (hi+lo)) / (hi - lo).
  ZMatrix apply(const PwHamiltonian& h, const ZMatrix& x) const;

  const std::vector<double>& coefficients() const { return coeff_; }

 private:
  double center_, halfwidth_;  // spectral affine map
  std::vector<double> coeff_;  // Jackson-damped expansion coefficients
};

/// Builds N_xi pseudobands for the energy window [a, b] from random vectors:
/// filter, orthonormalize against `protect` (exact low states) and among
/// themselves, and assign Rayleigh-quotient energies. Returned matrix has
/// pseudobands as ROWS; `energies_out` receives <xi|H|xi>.
ZMatrix chebyshev_pseudobands(const PwHamiltonian& h, double a, double b,
                              idx n_xi, idx order, const ZMatrix& protect_rows,
                              std::vector<double>& energies_out,
                              std::uint64_t seed);

}  // namespace xgw

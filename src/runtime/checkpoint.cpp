#include "runtime/checkpoint.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "common/log.h"
#include "io/iohooks.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xgw {

namespace {

constexpr char kMagic[4] = {'X', 'G', 'W', 'C'};

struct FileHeader {
  char magic[4];
  std::uint32_t version;
  std::uint32_t stage;
  std::uint32_t pad;  // keeps the 8-byte fields aligned; always 0
  std::int64_t step;
  std::int64_t total;
  std::uint64_t config_hash;
  std::int64_t payload_bytes;
};
static_assert(sizeof(FileHeader) == 48, "checkpoint header must be 48 bytes");

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::string tmp_path(const std::string& path) { return path + ".tmp"; }
std::string prev_path(const std::string& path) { return path + ".prev"; }

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc) {
  const auto& table = crc_table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void checkpoint_save(const std::string& path, const Checkpoint& c) {
  XGW_REQUIRE(!path.empty(), "checkpoint_save: empty path");
  XGW_REQUIRE(c.step >= 0 && c.total >= 0 && c.step <= c.total,
              "checkpoint_save: inconsistent step/total");

  FileHeader h{};
  std::memcpy(h.magic, kMagic, 4);
  h.version = kCheckpointVersion;
  h.stage = static_cast<std::uint32_t>(c.stage);
  h.pad = 0;
  h.step = c.step;
  h.total = c.total;
  h.config_hash = c.config_hash;
  h.payload_bytes = static_cast<std::int64_t>(c.payload.size());

  // The CRC is computed over the INTENDED bytes before the I/O hooks see
  // them (same rule as binio): an injected torn write or bit flip yields a
  // file whose stored CRC disagrees with its contents, so loaders detect
  // it and fall back a generation instead of resuming from garbage.
  std::uint32_t crc = crc32(&h, sizeof(h));
  crc = crc32(c.payload.data(), c.payload.size(), crc);

  const std::string tmp = tmp_path(path);
  io::io_retry_run("checkpoint_save", path, /*retry_corruption=*/false, [&] {
    {
      io::HookedFileWriter os(tmp);
      os.put(&h, sizeof(h));
      os.put(c.payload.data(), c.payload.size());
      os.put(&crc, sizeof(crc));
      os.finish();
    }
    // Keep the previous generation for corruption fallback, then promote
    // the fully-written tmp file in one rename — readers never observe a
    // partial checkpoint at `path`.
    std::error_code ec;
    if (std::filesystem::exists(path, ec))
      std::filesystem::rename(path, prev_path(path), ec);
    io::hooked_rename(tmp, path);
  });

  obs::metrics().counter("checkpoint.writes").inc();
  obs::metrics()
      .counter("checkpoint.bytes")
      .add(sizeof(h) + c.payload.size() + sizeof(crc));
  if (obs::trace_enabled())
    obs::recorder().record_instant(
        "checkpoint_written", "ckpt",
        "\"step\":" + std::to_string(c.step) + ",\"total\":" +
            std::to_string(c.total) + ",\"bytes\":" +
            std::to_string(c.payload.size()));
}

bool checkpoint_save_best_effort(const std::string& path, const Checkpoint& c,
                                 const char* stage_name) {
  try {
    checkpoint_save(path, c);
    return true;
  } catch (const Error& e) {
    if (e.kind() == ErrorKind::kGeneric || e.kind() == ErrorKind::kValidation)
      throw;  // caller bug (bad step/total), not a storage condition
    log_warn("checkpoint: SKIPPING save for stage ", stage_name, " at step ",
             c.step, "/", c.total, " (", c.payload.size(),
             " payload bytes to ", path, "): ", e.what(),
             " -- the loop continues; restart coverage resumes at the next "
             "successful save");
    obs::metrics().counter("checkpoint/skipped").inc();
    obs::metrics()
        .counter(std::string("fault/io/recovered/") +
                 io::recovered_fault_name(e.kind()))
        .inc();
    return false;
  }
}

Checkpoint checkpoint_load_strict(const std::string& path) {
  Checkpoint c;
  // Transient read blips are retried here; corruption is NOT (the bytes at
  // rest are wrong) — it surfaces as a classified error so checkpoint_load
  // can fall back a generation.
  io::io_retry_run("checkpoint_load", path, /*retry_corruption=*/false, [&] {
    io::HookedFileReader is(path);

    FileHeader h{};
    const std::size_t got = is.get_some(&h, sizeof(h));
    XGW_REQUIRE_KIND(got == sizeof(h),
                     "checkpoint: truncated header: '" + path + "': got " +
                         std::to_string(got) + " of " +
                         std::to_string(sizeof(h)) + " bytes",
                     ErrorKind::kIoTruncated);
    XGW_REQUIRE_KIND(std::memcmp(h.magic, kMagic, 4) == 0,
                     "checkpoint: bad magic (not an xgw checkpoint): '" +
                         path + "'",
                     ErrorKind::kIoCorrupt);
    XGW_REQUIRE_KIND(h.version == kCheckpointVersion,
                     "checkpoint: format version mismatch: '" + path +
                         "' (file v" + std::to_string(h.version) +
                         ", reader v" + std::to_string(kCheckpointVersion) +
                         ")",
                     ErrorKind::kIoCorrupt);
    XGW_REQUIRE_KIND(h.payload_bytes >= 0 && h.step >= 0 && h.total >= 0 &&
                         h.step <= h.total,
                     "checkpoint: corrupt header fields: '" + path + "'",
                     ErrorKind::kIoCorrupt);

    c = Checkpoint{};
    c.stage = static_cast<CheckpointStage>(h.stage);
    c.step = h.step;
    c.total = h.total;
    c.config_hash = h.config_hash;
    c.payload.resize(static_cast<std::size_t>(h.payload_bytes));
    const std::size_t pay =
        is.get_some(c.payload.data(), c.payload.size());
    XGW_REQUIRE_KIND(pay == c.payload.size(),
                     "checkpoint: truncated payload: '" + path + "': got " +
                         std::to_string(pay) + " of " +
                         std::to_string(c.payload.size()) + " bytes",
                     ErrorKind::kIoTruncated);

    std::uint32_t stored = 0;
    XGW_REQUIRE_KIND(is.get_some(&stored, sizeof(stored)) == sizeof(stored),
                     "checkpoint: missing CRC: '" + path + "'",
                     ErrorKind::kIoTruncated);
    std::uint32_t computed = crc32(&h, sizeof(h));
    computed = crc32(c.payload.data(), c.payload.size(), computed);
    XGW_REQUIRE_KIND(stored == computed,
                     "checkpoint: CRC-32 mismatch (corrupt file): '" + path +
                         "': payload of " + std::to_string(c.payload.size()) +
                         " bytes",
                     ErrorKind::kIoCorrupt);
  });
  return c;
}

std::optional<Checkpoint> checkpoint_load(const std::string& path) {
  bool primary_existed = false;
  ErrorKind primary_kind = ErrorKind::kGeneric;
  for (const std::string& candidate : {path, prev_path(path)}) {
    const bool is_fallback = candidate != path;
    std::error_code ec;
    if (!std::filesystem::exists(candidate, ec)) continue;
    if (!is_fallback) primary_existed = true;
    try {
      Checkpoint c = checkpoint_load_strict(candidate);
      if (is_fallback && primary_existed) {
        // Latest generation was unusable but .prev carried the run: the
        // defining event of the two-generation scheme. Loud on purpose.
        obs::metrics().counter("checkpoint/fallback").inc();
        obs::metrics()
            .counter(std::string("fault/io/recovered/") +
                     io::recovered_fault_name(primary_kind))
            .inc();
        if (obs::trace_enabled())
          obs::recorder().record_instant(
              "checkpoint_fallback", "ckpt",
              "\"path\":\"" + path + "\",\"resumed_step\":" +
                  std::to_string(c.step) + ",\"primary_error\":\"" +
                  to_string(primary_kind) + "\"");
      }
      return c;
    } catch (const Error& e) {
      // Corrupt/truncated/foreign-version file: fall through to the
      // previous generation.
      if (!is_fallback) primary_kind = e.kind();
    }
  }
  if (primary_existed) {
    // Both generations were unusable: the caller restarts from step 0.
    // Correct but expensive — surfaced so operators see it happened.
    obs::metrics().counter("checkpoint/cold_start").inc();
    if (obs::trace_enabled())
      obs::recorder().record_instant("checkpoint_cold_start", "ckpt",
                                     "\"path\":\"" + path + "\"");
  }
  return std::nullopt;
}

void checkpoint_remove(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(prev_path(path), ec);
  std::filesystem::remove(tmp_path(path), ec);
}

void CkptWriter::put_raw(const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void CkptWriter::put_span(std::span<const double> v) {
  put_i64(static_cast<std::int64_t>(v.size()));
  put_raw(v.data(), v.size_bytes());
}

void CkptWriter::put_span(std::span<const cplx> v) {
  put_i64(static_cast<std::int64_t>(v.size()));
  put_raw(v.data(), v.size_bytes());
}

void CkptReader::get_raw(void* data, std::size_t n) {
  XGW_REQUIRE(pos_ + n <= buf_.size(),
              "checkpoint: payload overrun (truncated record)");
  std::memcpy(data, buf_.data() + pos_, n);
  pos_ += n;
}

std::uint32_t CkptReader::get_u32() {
  std::uint32_t v;
  get_raw(&v, sizeof(v));
  return v;
}

std::int64_t CkptReader::get_i64() {
  std::int64_t v;
  get_raw(&v, sizeof(v));
  return v;
}

double CkptReader::get_f64() {
  double v;
  get_raw(&v, sizeof(v));
  return v;
}

cplx CkptReader::get_cplx() {
  cplx v;
  get_raw(&v, sizeof(v));
  return v;
}

void CkptReader::get_span(std::span<double> out) {
  const std::int64_t n = get_i64();
  XGW_REQUIRE(n == static_cast<std::int64_t>(out.size()),
              "checkpoint: span length mismatch");
  get_raw(out.data(), out.size_bytes());
}

void CkptReader::get_span(std::span<cplx> out) {
  const std::int64_t n = get_i64();
  XGW_REQUIRE(n == static_cast<std::int64_t>(out.size()),
              "checkpoint: span length mismatch");
  get_raw(out.data(), out.size_bytes());
}

}  // namespace xgw

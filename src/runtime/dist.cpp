#include "runtime/dist.h"

#include "common/error.h"

namespace xgw {

BlockDist::BlockDist(idx n, idx parts) : n_(n), parts_(parts) {
  XGW_REQUIRE(n >= 0, "BlockDist: n must be >= 0");
  XGW_REQUIRE(parts >= 1, "BlockDist: parts must be >= 1");
}

idx BlockDist::begin(idx p) const {
  XGW_REQUIRE(p >= 0 && p <= parts_, "BlockDist: part index out of range");
  const idx base = n_ / parts_;
  const idx extra = n_ % parts_;
  return p * base + std::min(p, extra);
}

idx BlockDist::count(idx p) const {
  XGW_REQUIRE(p >= 0 && p < parts_, "BlockDist: part index out of range");
  const idx base = n_ / parts_;
  const idx extra = n_ % parts_;
  return base + (p < extra ? 1 : 0);
}

idx BlockDist::owner(idx i) const {
  XGW_REQUIRE(i >= 0 && i < n_, "BlockDist: element index out of range");
  const idx base = n_ / parts_;
  const idx extra = n_ % parts_;
  const idx cut = extra * (base + 1);
  if (i < cut) return i / (base + 1);
  XGW_REQUIRE(base > 0, "BlockDist: internal owner inconsistency");
  return extra + (i - cut) / base;
}

PoolDecomposition::PoolDecomposition(idx n_ranks_total, idx n_pools_in,
                                     idx n_sigma_elems, idx n_gprime)
    : n_pools(n_pools_in),
      ranks_per_pool(n_ranks_total / n_pools_in),
      sigma_over_pools(n_sigma_elems, n_pools_in),
      gprime_over_ranks(n_gprime, n_ranks_total / n_pools_in) {
  XGW_REQUIRE(n_pools_in >= 1 && n_ranks_total >= n_pools_in,
              "PoolDecomposition: need at least one rank per pool");
  XGW_REQUIRE(n_ranks_total % n_pools_in == 0,
              "PoolDecomposition: ranks must divide evenly into pools");
}

std::vector<idx> cyclic_assignment(idx n, idx parts, idx part) {
  XGW_REQUIRE(parts >= 1 && part >= 0 && part < parts,
              "cyclic_assignment: bad part");
  std::vector<idx> mine;
  for (idx i = part; i < n; i += parts) mine.push_back(i);
  return mine;
}

}  // namespace xgw

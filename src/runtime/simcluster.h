#pragma once

// Simulated-cluster execution engine: run a rank-decomposed computation
// rank-by-rank ON THIS MACHINE, measure each rank's real compute time, and
// assemble the distributed-run timeline (slowest-rank time-to-solution plus
// modeled collective costs). This is the "functional MPI" layer behind the
// measured strong/weak-scaling parts of the figure benches: the
// decomposition logic and the per-rank work are real; only the network is
// a model.

#include <functional>
#include <string>
#include <vector>

#include "runtime/netmodel.h"

namespace xgw {

class SimCluster {
 public:
  SimCluster(idx n_ranks, NetworkModel net = {});

  idx n_ranks() const { return n_ranks_; }
  const NetworkModel& net() const { return net_; }

  struct RankReport {
    double compute_s = 0.0;
  };

  struct RunReport {
    std::vector<RankReport> ranks;
    double comm_s = 0.0;       ///< modeled collective time
    double serial_s = 0.0;     ///< sum of all rank compute times

    /// Distributed time-to-solution: slowest rank + communication.
    double time_to_solution() const;
    /// serial / (ranks * t2s): 1.0 = ideal.
    double parallel_efficiency() const;
    /// ASCII per-rank timeline (one bar per rank, normalized to slowest).
    std::string gantt(idx width = 50) const;
  };

  /// Executes fn(rank) for every rank, timing each. The lambdas run
  /// sequentially in-process — results are bitwise those of a real
  /// distributed run with deterministic reduction order.
  RunReport run(const std::function<void(idx rank)>& fn) const;

  /// Adds the cost of a final allreduce of `bytes` to a report.
  void cost_allreduce(RunReport& report, double bytes) const;
  void cost_allgather(RunReport& report, double bytes_per_rank) const;

 private:
  idx n_ranks_;
  NetworkModel net_;
};

}  // namespace xgw

#pragma once

// Simulated-cluster execution engine: run a rank-decomposed computation
// ON THIS MACHINE, measure each rank's real compute time, and assemble the
// distributed-run timeline (slowest-rank time-to-solution plus modeled
// collective costs). This is the "functional MPI" layer behind the
// measured strong/weak-scaling parts of the figure benches: the
// decomposition logic and the per-rank work are real; only the network is
// a model.
//
// Hybrid simulated/real runtime (ROADMAP item 2): ranks execute as nodes
// of a sched::TaskGraph on a worker pool, so with W > 1 workers they run
// ACTUALLY CONCURRENTLY — real comm/compute overlap, honest multicore
// wall time — while the alpha-beta network model stays in place as the
// "what-if at 9,408 nodes" projector. The measured_{wall,busy}_s fields
// of the report feed the projector's calibration (perf/calib.h): measured
// 1..N-worker efficiency replaces serial replay as its anchor. Results
// are bitwise identical at any worker count because rank lambdas write
// disjoint outputs and every cross-rank reduction here sums in fixed rank
// order (the GEMM engine's determinism discipline, applied to the
// runtime).
//
// Fault-tolerant path (run_items_ft): work items are block-distributed over
// ranks and each rank attempt is subject to the seeded FaultInjector.
// Crashed / corrupted attempts are retried with exponential backoff (the
// restart cost is charged through the NetworkModel so recovery shows up
// honestly in time_to_solution()); ranks that exhaust their retry budget
// are declared dead and their items are re-decomposed over the survivors
// via BlockDist; stragglers past the deadline are cancelled and recovered
// the same way. Because item functions are deterministic and idempotent,
// the numerical results are bitwise those of the fault-free run — only the
// timeline changes.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "runtime/fault.h"
#include "runtime/netmodel.h"

namespace xgw {

/// Per-attempt execution context handed to fault-tolerant item functions.
/// Kernels expose the buffers they WRITE (not accumulate) so the runtime
/// can apply injected corruption and validate outputs at the rank edge.
class RankContext {
 public:
  idx rank() const { return rank_; }
  int attempt() const { return attempt_; }

  /// Registers an output span for post-attempt poisoning + validation.
  /// The memory must stay valid until the rank attempt completes, and the
  /// item function must fully overwrite it on re-execution.
  void expose(std::span<cplx> out) { cplx_out_.push_back(out); }
  void expose(std::span<double> out) { real_out_.push_back(out); }

 private:
  friend class SimCluster;

  idx rank_ = 0;
  int attempt_ = 0;
  std::vector<std::span<cplx>> cplx_out_;
  std::vector<std::span<double>> real_out_;
};

class SimCluster {
 public:
  SimCluster(idx n_ranks, NetworkModel net = {});

  idx n_ranks() const { return n_ranks_; }
  const NetworkModel& net() const { return net_; }

  struct RankReport {
    double compute_s = 0.0;
  };

  struct RunReport {
    std::vector<RankReport> ranks;
    double comm_s = 0.0;       ///< modeled collective time
    double serial_s = 0.0;     ///< sum of all rank compute times

    // Fault-tolerance accounting (all zero / empty for fault-free runs).
    long retries = 0;               ///< rank attempts that had to be redone
    std::vector<idx> failed_ranks;  ///< ranks declared dead
    double recovery_s = 0.0;        ///< modeled backoff + redistribution time
    bool degraded = false;          ///< finished on fewer ranks than launched

    // Scheduler measurement (alpha-beta calibration inputs, perf/calib.h).
    idx workers = 1;               ///< scheduler workers this run used
    double measured_wall_s = 0.0;  ///< real wall time of the whole run
    double measured_busy_s = 0.0;  ///< summed task execution time

    /// Distributed time-to-solution: slowest rank + communication +
    /// recovery overhead.
    double time_to_solution() const;
    /// serial / (ranks * t2s): 1.0 = ideal.
    double parallel_efficiency() const;
    /// ASCII per-rank timeline (one bar per rank, normalized to slowest).
    std::string gantt(idx width = 50) const;
  };

  /// Executes fn(rank) for every rank as scheduler tasks, timing each.
  /// `workers` <= 0 uses sched::Executor::default_workers() (the
  /// XGW_SCHED_WORKERS / `sched_workers` knob); 1 reproduces the old
  /// serial rank-by-rank execution exactly. Lambdas must write disjoint
  /// outputs — then results are bitwise identical at every worker count.
  RunReport run(const std::function<void(idx rank)>& fn,
                int workers = 0) const;

  /// Fault-tolerant execution policy.
  struct FtOptions {
    FaultSpec faults;            ///< injection model (disabled by default)
    int max_attempts = 3;        ///< attempts per rank before declaring it dead
    double backoff_base_s = 0.05;///< modeled restart wait; doubles per retry
    double respawn_bytes = 1e6;  ///< state re-fetched per recovery (net cost)
    /// Ranks slower than this multiple of the median rank time are treated
    /// as stragglers: cancelled at the deadline and re-decomposed over the
    /// survivors. <= 0 disables detection.
    double straggler_deadline = 4.0;
    /// Absolute floor for the straggler deadline (seconds): sub-millisecond
    /// timing jitter must never cancel a healthy rank.
    double straggler_min_s = 1e-3;
    /// Scheduler workers for the rank tasks; <= 0 means
    /// sched::Executor::default_workers().
    int workers = 0;
    /// > 0 switches the fault timeline to a DETERMINISTIC virtual clock:
    /// an attempt over k items costs k * virtual_item_cost_s modeled
    /// seconds (scaled by the injector's crash fraction / straggle factor)
    /// instead of measured wall time. Straggler detection then operates on
    /// virtual times, so retries / failed_ranks / recovery_s become exact
    /// reproducible counters — identical at any worker count and on any
    /// host — which is what bench_fault_recovery gates on. 0 keeps the
    /// measured-wall-clock behavior (honest timelines, jittery ledger).
    double virtual_item_cost_s = 0.0;
  };

  /// Fault-tolerant execution of `n_items` work items block-distributed
  /// over the ranks (BlockDist(n_items, n_ranks)). `item_fn` computes one
  /// item and exposes its outputs on the context; it must be deterministic
  /// and overwrite (not accumulate into) its outputs so re-execution is
  /// idempotent. Throws Error if every rank dies.
  RunReport run_items_ft(
      idx n_items,
      const std::function<void(idx item, RankContext& ctx)>& item_fn,
      const FtOptions& opt) const;

  /// Fault-free convenience overload (default FtOptions).
  RunReport run_items_ft(
      idx n_items,
      const std::function<void(idx item, RankContext& ctx)>& item_fn) const {
    return run_items_ft(n_items, item_fn, FtOptions{});
  }

  /// Adds the cost of a final allreduce of `bytes` to a report.
  void cost_allreduce(RunReport& report, double bytes) const;
  void cost_allgather(RunReport& report, double bytes_per_rank) const;

 private:
  idx n_ranks_;
  NetworkModel net_;
};

}  // namespace xgw

#pragma once

// Alpha-beta (latency-bandwidth) communication cost model for the scaling
// simulator. Collective algorithms follow the standard implementations
// (recursive doubling / Rabenseifner), giving the log-P and bandwidth terms
// that shape the paper's strong- and weak-scaling curves (Figs. 3-6): ideal
// kernels are compute-bound, the "less favorable weak scaling with pool
// size" (Sec. 7.2) comes exactly from these allreduce terms.

#include "common/types.h"

namespace xgw {

struct NetworkModel {
  double alpha_s = 2.0e-6;        ///< per-message latency (seconds)
  double beta_s_per_byte = 1.0 / 25e9;  ///< inverse link bandwidth (s/B)

  /// Time for an allreduce of `bytes` over `ranks` (Rabenseifner:
  /// 2 log2(p) latency + 2 (p-1)/p * bytes bandwidth terms).
  double allreduce(double bytes, idx ranks) const;

  /// Broadcast (binomial tree).
  double bcast(double bytes, idx ranks) const;

  /// Allgather of `bytes_per_rank` contributed by each of `ranks` (ring).
  double allgather(double bytes_per_rank, idx ranks) const;

  /// Point-to-point message.
  double p2p(double bytes) const { return alpha_s + bytes * beta_s_per_byte; }

  /// Reduce-scatter (used by the NV-Block chi accumulation).
  double reduce_scatter(double bytes, idx ranks) const;
};

/// log2 rounded up, >= 0; log2_ceil(1) = 0.
int log2_ceil(idx n);

}  // namespace xgw

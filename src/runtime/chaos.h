#pragma once

// End-to-end storage + compute chaos harness for the out-of-core FF
// pipeline.
//
// The strongest robustness claim this codebase makes is not "it survives
// faults" but "it survives faults WITHOUT changing the physics": a run
// whose spill pages are torn, whose checkpoint writes hit ENOSPC, and
// whose reads blip with EIO must still produce QP energies BITWISE
// identical to the fault-free run. run_ff_chaos executes the full
// epsilon -> sigma_ff pipeline (build_ff_screening under a memory budget
// that forces out-of-core paging, then the band loop) beneath a seeded
// IoFaultInjector + FaultInjector schedule and reports everything needed
// to assert that claim: the per-run fault schedule (reproducible from the
// seed alone), injected/recovered counter deltas, and the recovered QP
// results. tests/test_chaos.cpp diffs the results against a fault-free
// reference with EXPECT_EQ on doubles — equality of bits, not tolerance.

#include <cstdint>
#include <vector>

#include "core/sigma_ff.h"
#include "io/iohooks.h"
#include "mem/spill.h"
#include "runtime/fault.h"

namespace xgw {

/// One chaos run = pipeline config + fault schedule + recovery budgets.
struct ChaosSpec {
  /// Compute (p_crash / p_corrupt / p_straggle, applied per band stage) and
  /// storage (faults.io, applied per file operation) halves of the
  /// schedule. Same seed -> same schedule, independent of timing.
  FaultSpec faults;
  /// Retry/backoff installed for the run's duration. Default: enough
  /// attempts to out-budget IoFaultSpec::max_per_path, no real sleeping.
  io::IoRetryPolicy retry{/*max_attempts=*/6, /*backoff_base_s=*/1e-4,
                          /*backoff_mult=*/2.0, /*jitter=*/0.5, /*seed=*/0,
                          /*sleep=*/false};
  /// Eviction-write verification installed for the run's duration.
  mem::SpillVerify spill_verify = mem::SpillVerify::kSize;
  /// Per-band retry budget for injected compute faults (crash / corrupt).
  int max_stage_attempts = 4;

  /// Pipeline under test. Set memory_budget_mb small enough that the
  /// planner pages the B^k v store out-of-core — otherwise no storage is
  /// exercised. Pin ff.chi.nv_block: NV-blocking is only roundoff-stable,
  /// and the planner may pick different blocks under different budgets.
  FfOptions ff;
  std::vector<idx> bands;
  double sigma_eta = 0.02;
};

/// What happened, in numbers the tests can assert on.
struct ChaosReport {
  std::vector<FfResult> results;  ///< QP results computed under chaos

  /// Fired storage faults in firing order (the reproducible schedule).
  std::vector<IoFaultInjector::Event> schedule;
  std::uint64_t io_injected = 0;   ///< total storage faults fired
  std::uint64_t io_recovered = 0;  ///< sum of fault/io/recovered/* deltas
  double stalled_s = 0.0;          ///< virtual stall time charged

  std::uint64_t compute_faults = 0;  ///< stage crash/corrupt/straggle fired
  std::uint64_t stage_retries = 0;   ///< band stages re-run after a fault

  bool spill_used = false;  ///< the planner actually paged out-of-core
  bool degraded = false;    ///< pool fell back to in-core (ENOSPC path)
  std::uint64_t rematerializations = 0;  ///< corrupt pages re-derived
  std::uint64_t rewrites = 0;            ///< eviction writes redone
};

/// Runs build_ff_screening + sigma_ff_diag under the spec's fault schedule,
/// recovering every injected fault (retry / rewrite / re-materialization /
/// degradation / stage re-execution). Throws only when a recovery budget is
/// genuinely exhausted — which a schedule respecting
/// IoFaultSpec::max_per_path < retry.max_attempts never does for transient
/// kinds. Global retry policy / spill-verify mode are restored on exit.
ChaosReport run_ff_chaos(GwCalculation& gw, const ChaosSpec& spec);

/// Storage-fault counter names, in IoFaultKind order (shared by the report
/// logic, tests, and the bench sweep).
inline constexpr const char* kIoFaultNames[5] = {"transient", "nospace",
                                                "torn", "bitflip", "stall"};

}  // namespace xgw

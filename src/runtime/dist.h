#pragma once

// Data distribution logic of the (simulated) distributed runtime.
//
// BerkeleyGW's Sigma module distributes work in two nested levels (Sec. 5.5):
// self-energy POOLS each own a subset of the N_Sigma matrix elements, and
// the N_G' summation inside each pool is block-distributed over the pool's
// N_rank ranks (each rank holds Nbar_G' = N_G' / N_rank columns). The same
// block logic distributes valence bands in the NV-Block CHI_SUM and
// frequencies in the full-frequency path.
//
// There is no MPI in this environment; these helpers capture the
// *decomposition* exactly (who owns what), the kernels execute each rank's
// share to produce bitwise-identical results to the serial path, and the
// perf module costs the induced communication with an alpha-beta model.

#include <vector>

#include "common/types.h"

namespace xgw {

/// Block distribution of [0, n) over `parts` parts: the first (n % parts)
/// parts get one extra element — the standard MPI block distribution.
class BlockDist {
 public:
  BlockDist(idx n, idx parts);

  idx n() const { return n_; }
  idx parts() const { return parts_; }

  /// First element owned by part p.
  idx begin(idx p) const;
  /// One past the last element owned by part p.
  idx end(idx p) const { return begin(p) + count(p); }
  /// Number of elements owned by part p.
  idx count(idx p) const;
  /// Largest per-part count (load-balance denominator).
  idx max_count() const { return count(0); }
  /// Owner of global element i.
  idx owner(idx i) const;

 private:
  idx n_;
  idx parts_;
};

/// Two-level Sigma decomposition: `n_pools` pools of `ranks_per_pool` ranks.
/// Pools split the Sigma matrix elements; ranks within a pool split N_G'.
struct PoolDecomposition {
  PoolDecomposition(idx n_ranks_total, idx n_pools, idx n_sigma_elems,
                    idx n_gprime);

  idx n_pools;
  idx ranks_per_pool;
  BlockDist sigma_over_pools;   ///< Sigma elements -> pools
  BlockDist gprime_over_ranks;  ///< G' columns -> ranks within a pool

  /// Global rank id for (pool, local rank).
  idx global_rank(idx pool, idx local) const {
    return pool * ranks_per_pool + local;
  }
};

/// Round-robin (cyclic) distribution, used for frequencies in the FF path.
std::vector<idx> cyclic_assignment(idx n, idx parts, idx part);

}  // namespace xgw

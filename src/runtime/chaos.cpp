#include "runtime/chaos.h"

#include <cmath>
#include <limits>
#include <string>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xgw {

namespace {

/// Exception-safe save/restore of the process-wide knobs a chaos run
/// temporarily owns (retry policy, spill verification mode).
class ScopedRunConfig {
 public:
  ScopedRunConfig(const io::IoRetryPolicy& policy, mem::SpillVerify verify)
      : prev_policy_(io::io_retry_policy()),
        prev_verify_(mem::spill_verify()) {
    io::set_io_retry_policy(policy);
    mem::set_spill_verify(verify);
  }
  ~ScopedRunConfig() {
    io::set_io_retry_policy(prev_policy_);
    mem::set_spill_verify(prev_verify_);
  }
  ScopedRunConfig(const ScopedRunConfig&) = delete;
  ScopedRunConfig& operator=(const ScopedRunConfig&) = delete;

 private:
  io::IoRetryPolicy prev_policy_;
  mem::SpillVerify prev_verify_;
};

std::uint64_t recovered_total() {
  std::uint64_t total = 0;
  for (const char* name : kIoFaultNames)
    total += obs::metrics().counter_value(std::string("fault/io/recovered/") +
                                          name);
  return total;
}

}  // namespace

ChaosReport run_ff_chaos(GwCalculation& gw, const ChaosSpec& spec) {
  XGW_REQUIRE(!spec.bands.empty(), "run_ff_chaos: empty band set");
  XGW_REQUIRE(spec.max_stage_attempts >= 1,
              "run_ff_chaos: max_stage_attempts must be >= 1");

  ScopedRunConfig cfg(spec.retry, spec.spill_verify);
  IoFaultInjector inj(spec.faults.io);
  io::ScopedIoHooks hooks(spec.faults.io.enabled() ? &inj : nullptr);

  const std::uint64_t recovered_before = recovered_total();

  ChaosReport rep;

  // --- FF epsilon stage: the spill-heavy half --------------------------
  // Every eviction, page-in and re-materialization of the B^k v store runs
  // beneath the injector here.
  FfScreening scr = build_ff_screening(gw, spec.ff);
  rep.spill_used = scr.bv.spilling();

  // --- sigma band loop under compute faults ----------------------------
  // Bands are independent and one-at-a-time evaluation is bitwise
  // identical to the batch (see sigma_diag_checkpointed), so a band stage
  // is the natural re-execution unit: a crashed or validation-rejected
  // attempt is simply re-run, and the retry reproduces the fault-free
  // bits. NaN-poisoned results are caught AT THE STAGE BOUNDARY — the
  // validate-where-corruption-enters rule — never merged.
  FaultInjector cf(spec.faults);
  const bool compute_chaos = spec.faults.enabled();
  for (std::size_t i = 0; i < spec.bands.size(); ++i) {
    for (int attempt = 0;; ++attempt) {
      const FaultKind k = compute_chaos
                              ? cf.decide(static_cast<idx>(i), attempt)
                              : FaultKind::kNone;
      try {
        if (k == FaultKind::kCrash) {
          ++rep.compute_faults;
          throw RankFailure(static_cast<idx>(i), attempt, k);
        }
        std::vector<FfResult> one =
            sigma_ff_diag(gw, scr, {spec.bands[i]}, spec.sigma_eta);
        FfResult r = one.front();
        if (k == FaultKind::kCorrupt) {
          ++rep.compute_faults;
          r.e_qp = std::numeric_limits<double>::quiet_NaN();
        } else if (k == FaultKind::kStraggle) {
          ++rep.compute_faults;  // correct but slow: no retry needed
        }
        if (!std::isfinite(r.e_qp) || !std::isfinite(r.z))
          throw RankFailure(static_cast<idx>(i), attempt,
                            FaultKind::kCorrupt);
        rep.results.push_back(r);
        break;
      } catch (const RankFailure& f) {
        ++rep.stage_retries;
        if (obs::trace_enabled())
          obs::recorder().record_instant(
              "chaos_stage_retry", "fault",
              "\"band\":" + std::to_string(spec.bands[i]) +
                  ",\"attempt\":" + std::to_string(attempt + 1) +
                  ",\"kind\":\"" + to_string(f.kind()) + "\"");
        if (attempt + 1 >= spec.max_stage_attempts)
          throw Error("chaos: band " + std::to_string(spec.bands[i]) +
                      " exhausted its compute retry budget (" +
                      std::to_string(spec.max_stage_attempts) +
                      " attempts): " + f.what());
      }
    }
  }

  // --- report ----------------------------------------------------------
  rep.schedule = inj.schedule();
  rep.io_injected = inj.injected();
  rep.stalled_s = inj.stalled_s();
  rep.io_recovered = recovered_total() - recovered_before;
  if (const mem::SpillPool* p = scr.bv.pool()) {
    rep.degraded = p->degraded();
    rep.rematerializations = p->rematerializations();
    rep.rewrites = p->rewrites();
  }
  log_info("chaos: ", rep.io_injected, " storage faults injected, ",
           rep.io_recovered, " recovered, ", rep.compute_faults,
           " compute faults, ", rep.stage_retries, " stage retries",
           rep.degraded ? " (pool degraded in-core)" : "");
  return rep;
}

}  // namespace xgw

#include "runtime/netmodel.h"

#include <cmath>

#include "common/error.h"

namespace xgw {

int log2_ceil(idx n) {
  XGW_REQUIRE(n >= 1, "log2_ceil: n must be >= 1");
  int k = 0;
  idx v = 1;
  while (v < n) {
    v *= 2;
    ++k;
  }
  return k;
}

double NetworkModel::allreduce(double bytes, idx ranks) const {
  if (ranks <= 1) return 0.0;
  const double p = static_cast<double>(ranks);
  const int lg = log2_ceil(ranks);
  return 2.0 * lg * alpha_s +
         2.0 * ((p - 1.0) / p) * bytes * beta_s_per_byte;
}

double NetworkModel::bcast(double bytes, idx ranks) const {
  if (ranks <= 1) return 0.0;
  const int lg = log2_ceil(ranks);
  return lg * (alpha_s + bytes * beta_s_per_byte);
}

double NetworkModel::allgather(double bytes_per_rank, idx ranks) const {
  if (ranks <= 1) return 0.0;
  const double p = static_cast<double>(ranks);
  return (p - 1.0) * alpha_s + (p - 1.0) * bytes_per_rank * beta_s_per_byte;
}

double NetworkModel::reduce_scatter(double bytes, idx ranks) const {
  if (ranks <= 1) return 0.0;
  const double p = static_cast<double>(ranks);
  const int lg = log2_ceil(ranks);
  return lg * alpha_s + ((p - 1.0) / p) * bytes * beta_s_per_byte;
}

}  // namespace xgw

#pragma once

// Checkpoint/restart subsystem for the long GW loops.
//
// BerkeleyGW-class campaigns survive multi-hour node-count-9408 runs only
// through restart files (the Chi q-point and Sigma band loops of
// arXiv:2104.09857 are the canonical targets). This module provides the
// container format; core/epsilon.cpp and core/sigma.cpp own the
// stage-specific payloads.
//
// File layout (little-endian), layered on the io/binio conventions:
//   magic "XGWC" | version u32 | stage u32 | step i64 | total i64 |
//   config_hash u64 | payload_bytes i64 | payload | CRC-32 u32
// The CRC covers header + payload. Writes are atomic: the file is written
// to `path + ".tmp"` and renamed over `path`; the previous checkpoint is
// kept as `path + ".prev"` so a crash DURING checkpointing (or later
// corruption of the newest file) falls back one step instead of losing the
// run. Readers verify magic, version, dimensions and CRC; checkpoint_load
// degrades gracefully (latest -> previous -> none) while the _strict
// variant throws on the first defect.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/tracker.h"

namespace xgw {

/// Checkpoint payload buffer — accounted under mem::Tag::kCheckpoint so the
/// tracker's per-tag columns expose restart-state footprint. kNeverArena:
/// payloads outlive any workspace scope.
using CkptBuffer =
    std::vector<unsigned char,
                mem::TrackedAllocator<unsigned char, mem::Tag::kCheckpoint,
                                      mem::Route::kNeverArena>>;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). Pass the previous
/// return value as `crc` to stream over multiple buffers.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc = 0);

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Which loop wrote the checkpoint.
enum class CheckpointStage : std::uint32_t {
  kEpsilon = 1,  ///< epsilon frequency/q-point loop
  kSigma = 2,    ///< sigma band loop
  kCustom = 100, ///< tests / external tooling
};

struct Checkpoint {
  CheckpointStage stage = CheckpointStage::kCustom;
  std::int64_t step = 0;          ///< completed loop iterations
  std::int64_t total = 0;         ///< loop extent (validated on resume)
  std::uint64_t config_hash = 0;  ///< rejects resuming a different run
  CkptBuffer payload;             ///< stage-specific serialized state
};

/// Atomic save: tmp write + rename; an existing checkpoint at `path` is
/// preserved as `path + ".prev"` before the rename.
void checkpoint_save(const std::string& path, const Checkpoint& c);

/// checkpoint_save that survives a full scratch filesystem: ENOSPC (and
/// any exhausted-retry storage failure) degrades to SKIPPING this
/// checkpoint with an actionable warning naming the stage, path and
/// payload bytes — the loop keeps computing and restart coverage resumes
/// at the next successful save. Returns false when the save was skipped.
/// Non-storage errors still throw.
bool checkpoint_save_best_effort(const std::string& path, const Checkpoint& c,
                                 const char* stage_name);

/// Loads `path`, falling back to `path + ".prev"` when the primary file is
/// missing, truncated, corrupt, or from a different format version.
/// Returns nullopt when no usable checkpoint exists.
std::optional<Checkpoint> checkpoint_load(const std::string& path);

/// Single-file load that throws xgw::Error on any defect (tooling/tests).
Checkpoint checkpoint_load_strict(const std::string& path);

/// Removes `path`, its ".prev" and any stale ".tmp" (end-of-run cleanup).
void checkpoint_remove(const std::string& path);

// --- payload serialization helpers ---------------------------------------

/// Append-only little-endian buffer writer for checkpoint payloads.
class CkptWriter {
 public:
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof(v)); }
  void put_f64(double v) { put_raw(&v, sizeof(v)); }
  void put_cplx(cplx v) { put_raw(&v, sizeof(v)); }
  void put_span(std::span<const double> v);
  void put_span(std::span<const cplx> v);

  CkptBuffer take() { return std::move(buf_); }

 private:
  void put_raw(const void* data, std::size_t n);

  CkptBuffer buf_;
};

/// Bounds-checked reader over a checkpoint payload; throws xgw::Error on
/// overrun (truncated payloads must fail loudly).
class CkptReader {
 public:
  explicit CkptReader(std::span<const unsigned char> buf) : buf_(buf) {}

  std::uint32_t get_u32();
  std::int64_t get_i64();
  double get_f64();
  cplx get_cplx();
  void get_span(std::span<double> out);
  void get_span(std::span<cplx> out);

  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void get_raw(void* data, std::size_t n);

  std::span<const unsigned char> buf_;
  std::size_t pos_ = 0;
};

}  // namespace xgw

#pragma once

// Fault-injection model for the simulated-cluster runtime.
//
// The paper's headline runs occupy 9,408 Frontier nodes for hours; at that
// scale node loss, silent data corruption, and stragglers are the expected
// operating regime, not the exception (cf. the exascale resilience
// requirement in arXiv:2209.12747). This module provides the deterministic
// chaos half of the fault-tolerance story: a seedable injector that decides,
// per (rank, attempt), whether that execution crashes, returns NaN-poisoned
// output, or runs N x slow. Decisions depend only on (seed, rank, attempt),
// never on execution order, so a given seed reproduces the same failure
// pattern across reruns and across checkpoint resumes.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "io/iohooks.h"

namespace xgw {

/// What the injector does to one rank attempt.
enum class FaultKind : std::uint8_t {
  kNone = 0,      ///< attempt succeeds normally
  kCrash,         ///< rank dies partway through the attempt (work lost)
  kCorrupt,       ///< rank completes but its output is NaN-poisoned
  kStraggle,      ///< rank completes correctly but straggle_factor x slower
};

const char* to_string(FaultKind kind);

/// Thrown by the runtime when a rank attempt is killed by the injector or
/// when output validation rejects the attempt's results.
class RankFailure : public Error {
 public:
  RankFailure(idx rank, int attempt, FaultKind kind);

  idx rank() const { return rank_; }
  int attempt() const { return attempt_; }
  FaultKind kind() const { return kind_; }

 private:
  idx rank_;
  int attempt_;
  FaultKind kind_;
};

/// What the I/O injector does to one storage operation.
enum class IoFaultKind : std::uint8_t {
  kNone = 0,    ///< operation proceeds normally
  kTransient,   ///< EIO-class blip: op throws kIoTransient, retry succeeds
  kNoSpace,     ///< ENOSPC: write throws kIoNoSpace (degradation path)
  kTorn,        ///< write silently stops partway (discovered at read/verify)
  kBitFlip,     ///< one bit of the outgoing buffer flips silently
  kStall,       ///< latency spike: op completes after a (virtual) stall
};

const char* to_string(IoFaultKind kind);

/// Per-run storage-fault configuration — the I/O half of the chaos model.
/// Probabilities are per OPERATION (open/read/write/flush/rename on one
/// file) and are evaluated in the order transient, nospace, torn, bitflip,
/// stall from one uniform draw, so their sum must be <= 1. Decisions depend
/// only on (seed, path, per-path op ordinal), never on wall clock, so a
/// given seed reproduces the same fault schedule on every rerun of the
/// same pipeline.
struct IoFaultSpec {
  std::uint64_t seed = 0;       ///< injection stream seed
  double p_transient = 0.0;     ///< P(op fails with transient EIO)
  double p_nospace = 0.0;       ///< P(write fails with ENOSPC)
  double p_torn = 0.0;          ///< P(write is silently torn short)
  double p_bitflip = 0.0;       ///< P(one written bit flips silently)
  double p_stall = 0.0;         ///< P(op stalls)
  double stall_s = 0.001;       ///< virtual seconds charged per stall
  /// Hard cap on TOTAL faults fired against any single path. This is what
  /// makes every seeded schedule recoverable by construction: a whole-file
  /// operation retried more than max_per_path times must eventually run
  /// fault-free, so a retry budget of max_per_path + 1 attempts (plus the
  /// rewrite / re-materialization layers for silent corruption) always
  /// converges. <= 0 disables injection.
  int max_per_path = 2;
  /// Only inject on paths containing this substring ("" = all paths) —
  /// targeted injection ("corrupt only the checkpoint", "only spill pages").
  std::string path_contains;

  bool enabled() const {
    return p_transient > 0.0 || p_nospace > 0.0 || p_torn > 0.0 ||
           p_bitflip > 0.0 || p_stall > 0.0;
  }
};

/// Per-run fault configuration. Probabilities are per rank ATTEMPT and are
/// evaluated in the order crash, corrupt, straggle from one uniform draw,
/// so p_crash + p_corrupt + p_straggle must be <= 1.
struct FaultSpec {
  std::uint64_t seed = 0;       ///< injection stream seed
  double p_crash = 0.0;         ///< P(attempt crashes mid-flight)
  double p_corrupt = 0.0;       ///< P(attempt returns NaN-poisoned output)
  double p_straggle = 0.0;      ///< P(attempt straggles)
  double straggle_factor = 8.0; ///< straggler slowdown multiplier
  /// Ranks that crash on EVERY attempt (targeted injection: "lose node k").
  /// These ranks exhaust their retry budget and are declared dead, forcing
  /// the redistribution path.
  std::vector<idx> kill_ranks;
  /// Storage-fault half of the schedule (injected behind the io::IoHooks
  /// seam by IoFaultInjector; ignored by the compute-only SimCluster path).
  IoFaultSpec io;

  bool enabled() const {
    return p_crash > 0.0 || p_corrupt > 0.0 || p_straggle > 0.0 ||
           !kill_ranks.empty();
  }
};

/// Deterministic, order-independent fault oracle.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec = {});

  const FaultSpec& spec() const { return spec_; }

  /// The fate of attempt `attempt` on rank `rank`.
  FaultKind decide(idx rank, int attempt) const;

  /// Fraction of the attempt's work completed before a crash (in [0.25,
  /// 0.75)): the wasted compute charged to the timeline.
  double crash_fraction(idx rank, int attempt) const;

  /// Element poisoned by a corrupt fault, uniform in [0, n).
  std::size_t poison_index(idx rank, int attempt, std::size_t n) const;

 private:
  std::uint64_t stream_seed(idx rank, int attempt) const;

  FaultSpec spec_;
};

/// Deterministic storage-fault injector behind the io::IoHooks seam.
///
/// Install with io::ScopedIoHooks (or set_io_hooks) and every binio / spill
/// / checkpoint byte flows through it. Each operation on a path draws its
/// fate from (seed, fnv1a(path), per-path op ordinal):
///   kTransient / kNoSpace -> classified xgw::Error thrown before bytes move
///   kTorn                 -> the write silently ends at a seeded fraction
///   kBitFlip              -> one seeded bit of the outgoing buffer flips
///   kStall                -> stall_s virtual seconds charged, op proceeds
/// Every fired fault increments fault/io/injected/<kind> on the global
/// metrics registry and (when tracing) records an instant event, so the
/// chaos harness can assert injected == recovered from one snapshot.
class IoFaultInjector : public io::IoHooks {
 public:
  explicit IoFaultInjector(IoFaultSpec spec = {});

  const IoFaultSpec& spec() const { return spec_; }

  // io::IoHooks
  void before(const std::string& path, io::IoOp op, std::uint64_t offset,
              std::size_t bytes) override;
  std::size_t on_write(const std::string& path, std::uint64_t offset,
                       unsigned char* data, std::size_t n) override;

  /// One fired fault, in firing order (the reproducible schedule).
  struct Event {
    std::string path;
    io::IoOp op = io::IoOp::kRead;
    std::uint64_t ordinal = 0;  ///< per-path operation index
    IoFaultKind kind = IoFaultKind::kNone;
  };

  /// Faults fired so far, in order. Two runs of the same pipeline with the
  /// same seed produce identical schedules.
  std::vector<Event> schedule() const;

  /// Total faults fired, and per-kind counts.
  std::uint64_t injected() const;
  std::uint64_t injected(IoFaultKind kind) const;
  /// Virtual stall seconds accumulated.
  double stalled_s() const;

 private:
  IoFaultKind decide(const std::string& path, io::IoOp op,
                     std::uint64_t ordinal) const;
  void fire(const std::string& path, io::IoOp op, std::uint64_t ordinal,
            IoFaultKind kind);

  struct PathState {
    std::uint64_t ordinal = 0;  ///< next operation index
    int faults_fired = 0;       ///< total, bounded by spec.max_per_path
    IoFaultKind pending_write = IoFaultKind::kNone;  ///< torn/bitflip handoff
  };

  IoFaultSpec spec_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, PathState> paths_;
  std::vector<Event> schedule_;
  std::uint64_t counts_[6] = {0, 0, 0, 0, 0, 0};
  double stalled_s_ = 0.0;
};

}  // namespace xgw

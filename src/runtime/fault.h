#pragma once

// Fault-injection model for the simulated-cluster runtime.
//
// The paper's headline runs occupy 9,408 Frontier nodes for hours; at that
// scale node loss, silent data corruption, and stragglers are the expected
// operating regime, not the exception (cf. the exascale resilience
// requirement in arXiv:2209.12747). This module provides the deterministic
// chaos half of the fault-tolerance story: a seedable injector that decides,
// per (rank, attempt), whether that execution crashes, returns NaN-poisoned
// output, or runs N x slow. Decisions depend only on (seed, rank, attempt),
// never on execution order, so a given seed reproduces the same failure
// pattern across reruns and across checkpoint resumes.

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace xgw {

/// What the injector does to one rank attempt.
enum class FaultKind : std::uint8_t {
  kNone = 0,      ///< attempt succeeds normally
  kCrash,         ///< rank dies partway through the attempt (work lost)
  kCorrupt,       ///< rank completes but its output is NaN-poisoned
  kStraggle,      ///< rank completes correctly but straggle_factor x slower
};

const char* to_string(FaultKind kind);

/// Thrown by the runtime when a rank attempt is killed by the injector or
/// when output validation rejects the attempt's results.
class RankFailure : public Error {
 public:
  RankFailure(idx rank, int attempt, FaultKind kind);

  idx rank() const { return rank_; }
  int attempt() const { return attempt_; }
  FaultKind kind() const { return kind_; }

 private:
  idx rank_;
  int attempt_;
  FaultKind kind_;
};

/// Per-run fault configuration. Probabilities are per rank ATTEMPT and are
/// evaluated in the order crash, corrupt, straggle from one uniform draw,
/// so p_crash + p_corrupt + p_straggle must be <= 1.
struct FaultSpec {
  std::uint64_t seed = 0;       ///< injection stream seed
  double p_crash = 0.0;         ///< P(attempt crashes mid-flight)
  double p_corrupt = 0.0;       ///< P(attempt returns NaN-poisoned output)
  double p_straggle = 0.0;      ///< P(attempt straggles)
  double straggle_factor = 8.0; ///< straggler slowdown multiplier
  /// Ranks that crash on EVERY attempt (targeted injection: "lose node k").
  /// These ranks exhaust their retry budget and are declared dead, forcing
  /// the redistribution path.
  std::vector<idx> kill_ranks;

  bool enabled() const {
    return p_crash > 0.0 || p_corrupt > 0.0 || p_straggle > 0.0 ||
           !kill_ranks.empty();
  }
};

/// Deterministic, order-independent fault oracle.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec = {});

  const FaultSpec& spec() const { return spec_; }

  /// The fate of attempt `attempt` on rank `rank`.
  FaultKind decide(idx rank, int attempt) const;

  /// Fraction of the attempt's work completed before a crash (in [0.25,
  /// 0.75)): the wasted compute charged to the timeline.
  double crash_fraction(idx rank, int attempt) const;

  /// Element poisoned by a corrupt fault, uniform in [0, n).
  std::size_t poison_index(idx rank, int attempt, std::size_t n) const;

 private:
  std::uint64_t stream_seed(idx rank, int attempt) const;

  FaultSpec spec_;
};

}  // namespace xgw

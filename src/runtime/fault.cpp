#include "runtime/fault.h"

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xgw {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kStraggle:
      return "straggle";
  }
  return "unknown";
}

RankFailure::RankFailure(idx rank, int attempt, FaultKind kind)
    : Error("rank " + std::to_string(rank) + " attempt " +
            std::to_string(attempt) + " failed (" + to_string(kind) + ")"),
      rank_(rank),
      attempt_(attempt),
      kind_(kind) {}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {
  XGW_REQUIRE(spec_.p_crash >= 0.0 && spec_.p_corrupt >= 0.0 &&
                  spec_.p_straggle >= 0.0,
              "FaultSpec: probabilities must be >= 0");
  XGW_REQUIRE(spec_.p_crash + spec_.p_corrupt + spec_.p_straggle <= 1.0,
              "FaultSpec: probabilities must sum to <= 1");
  XGW_REQUIRE(spec_.straggle_factor >= 1.0,
              "FaultSpec: straggle_factor must be >= 1");
}

std::uint64_t FaultInjector::stream_seed(idx rank, int attempt) const {
  // Golden-ratio / Murmur-style mixing so that neighboring (rank, attempt)
  // pairs land in unrelated parts of the stream; Rng's splitmix64 seeding
  // finishes the job.
  std::uint64_t s = spec_.seed;
  s ^= 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(rank) + 1);
  s ^= 0xBF58476D1CE4E5B9ULL * (static_cast<std::uint64_t>(attempt) + 1);
  return s;
}

FaultKind FaultInjector::decide(idx rank, int attempt) const {
  if (std::find(spec_.kill_ranks.begin(), spec_.kill_ranks.end(), rank) !=
      spec_.kill_ranks.end())
    return FaultKind::kCrash;
  if (spec_.p_crash <= 0.0 && spec_.p_corrupt <= 0.0 &&
      spec_.p_straggle <= 0.0)
    return FaultKind::kNone;
  Rng rng(stream_seed(rank, attempt));
  const double u = rng.uniform();
  if (u < spec_.p_crash) return FaultKind::kCrash;
  if (u < spec_.p_crash + spec_.p_corrupt) return FaultKind::kCorrupt;
  if (u < spec_.p_crash + spec_.p_corrupt + spec_.p_straggle)
    return FaultKind::kStraggle;
  return FaultKind::kNone;
}

double FaultInjector::crash_fraction(idx rank, int attempt) const {
  Rng rng(stream_seed(rank, attempt) ^ 0xD6E8FEB86659FD93ULL);
  return rng.uniform(0.25, 0.75);
}

std::size_t FaultInjector::poison_index(idx rank, int attempt,
                                        std::size_t n) const {
  if (n == 0) return 0;
  Rng rng(stream_seed(rank, attempt) ^ 0xA5A5A5A55A5A5A5AULL);
  return static_cast<std::size_t>(rng.below(n));
}

// --- storage-fault injector ----------------------------------------------

const char* to_string(IoFaultKind kind) {
  switch (kind) {
    case IoFaultKind::kNone:
      return "none";
    case IoFaultKind::kTransient:
      return "transient";
    case IoFaultKind::kNoSpace:
      return "nospace";
    case IoFaultKind::kTorn:
      return "torn";
    case IoFaultKind::kBitFlip:
      return "bitflip";
    case IoFaultKind::kStall:
      return "stall";
  }
  return "unknown";
}

namespace {

std::uint64_t io_stream_seed(std::uint64_t seed, const std::string& path,
                             std::uint64_t ordinal) {
  std::uint64_t s = seed;
  s ^= 0x9E3779B97F4A7C15ULL *
       (io::fnv1a_bytes(path.data(), path.size()) | 1ULL);
  s ^= 0xBF58476D1CE4E5B9ULL * (ordinal + 1);
  return s;
}

bool is_write_class(io::IoOp op) {
  return op == io::IoOp::kOpenWrite || op == io::IoOp::kWrite ||
         op == io::IoOp::kFlush || op == io::IoOp::kRename;
}

}  // namespace

IoFaultInjector::IoFaultInjector(IoFaultSpec spec) : spec_(std::move(spec)) {
  XGW_REQUIRE(spec_.p_transient >= 0.0 && spec_.p_nospace >= 0.0 &&
                  spec_.p_torn >= 0.0 && spec_.p_bitflip >= 0.0 &&
                  spec_.p_stall >= 0.0,
              "IoFaultSpec: probabilities must be >= 0");
  XGW_REQUIRE(spec_.p_transient + spec_.p_nospace + spec_.p_torn +
                      spec_.p_bitflip + spec_.p_stall <=
                  1.0,
              "IoFaultSpec: probabilities must sum to <= 1");
  XGW_REQUIRE(spec_.stall_s >= 0.0, "IoFaultSpec: stall_s must be >= 0");
}

IoFaultKind IoFaultInjector::decide(const std::string& path, io::IoOp op,
                                    std::uint64_t ordinal) const {
  if (!spec_.enabled()) return IoFaultKind::kNone;
  Rng rng(io_stream_seed(spec_.seed, path, ordinal));
  const double u = rng.uniform();
  double edge = spec_.p_transient;
  IoFaultKind k = IoFaultKind::kNone;
  if (u < edge) {
    k = IoFaultKind::kTransient;
  } else if (u < (edge += spec_.p_nospace)) {
    k = IoFaultKind::kNoSpace;
  } else if (u < (edge += spec_.p_torn)) {
    k = IoFaultKind::kTorn;
  } else if (u < (edge += spec_.p_bitflip)) {
    k = IoFaultKind::kBitFlip;
  } else if (u < (edge += spec_.p_stall)) {
    k = IoFaultKind::kStall;
  }
  // Applicability filter: a fault drawn for an operation class it cannot
  // affect is a no-op (decisions stay order-independent; effective rates
  // per op class are exactly the configured ones).
  if (k == IoFaultKind::kNoSpace && !is_write_class(op))
    return IoFaultKind::kNone;
  if ((k == IoFaultKind::kTorn || k == IoFaultKind::kBitFlip) &&
      op != io::IoOp::kWrite)
    return IoFaultKind::kNone;
  return k;
}

void IoFaultInjector::fire(const std::string& path, io::IoOp op,
                           std::uint64_t ordinal, IoFaultKind kind) {
  schedule_.push_back({path, op, ordinal, kind});
  ++counts_[static_cast<std::size_t>(kind)];
  obs::metrics()
      .counter(std::string("fault/io/injected/") + to_string(kind))
      .inc();
  if (obs::trace_enabled())
    obs::recorder().record_instant(
        (std::string("io_fault:") + to_string(kind)).c_str(), "fault",
        "\"path\":\"" + path + "\",\"op\":\"" + io::to_string(op) +
            "\",\"ordinal\":" + std::to_string(ordinal));
}

void IoFaultInjector::before(const std::string& path, io::IoOp op,
                             std::uint64_t offset, std::size_t bytes) {
  (void)offset;
  (void)bytes;
  if (!spec_.path_contains.empty() &&
      path.find(spec_.path_contains) == std::string::npos)
    return;
  std::unique_lock<std::mutex> lock(mu_);
  PathState& st = paths_[path];
  const std::uint64_t ordinal = st.ordinal++;
  IoFaultKind k = decide(path, op, ordinal);
  if (k == IoFaultKind::kNone) return;
  // Total per-path cap: guarantees every seeded schedule is recoverable by
  // a bounded retry / rewrite / re-materialization budget (see IoFaultSpec).
  if (st.faults_fired >= spec_.max_per_path) return;
  ++st.faults_fired;
  switch (k) {
    case IoFaultKind::kNone:
      return;
    case IoFaultKind::kStall:
      fire(path, op, ordinal, k);
      stalled_s_ += spec_.stall_s;
      // A stall is survived by waiting: it is its own recovery.
      obs::metrics().counter("fault/io/recovered/stall").inc();
      return;
    case IoFaultKind::kTransient:
      fire(path, op, ordinal, k);
      lock.unlock();
      throw Error("injected I/O fault: transient EIO on " +
                      std::string(io::to_string(op)) + " of '" + path +
                      "' (op " + std::to_string(ordinal) + ")",
                  ErrorKind::kIoTransient);
    case IoFaultKind::kNoSpace:
      fire(path, op, ordinal, k);
      lock.unlock();
      throw Error("injected I/O fault: ENOSPC on " +
                      std::string(io::to_string(op)) + " of '" + path +
                      "' (op " + std::to_string(ordinal) + ")",
                  ErrorKind::kIoNoSpace);
    case IoFaultKind::kTorn:
    case IoFaultKind::kBitFlip:
      // Applied to the buffer in the on_write that follows this before().
      st.pending_write = k;
      fire(path, op, ordinal, k);
      return;
  }
}

std::size_t IoFaultInjector::on_write(const std::string& path,
                                      std::uint64_t offset,
                                      unsigned char* data, std::size_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = paths_.find(path);
  if (it == paths_.end() || it->second.pending_write == IoFaultKind::kNone ||
      n == 0)
    return n;
  const IoFaultKind k = it->second.pending_write;
  it->second.pending_write = IoFaultKind::kNone;
  Rng rng(io_stream_seed(spec_.seed ^ 0xD6E8FEB86659FD93ULL, path,
                         it->second.ordinal) ^
          offset);
  if (k == IoFaultKind::kTorn) {
    // The write silently ends somewhere in [25%, 75%) of this buffer.
    return static_cast<std::size_t>(static_cast<double>(n) *
                                    rng.uniform(0.25, 0.75));
  }
  // kBitFlip: one seeded bit flips on the way to the platter.
  const std::uint64_t bit = rng.below(static_cast<std::uint64_t>(n) * 8);
  data[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
  return n;
}

std::vector<IoFaultInjector::Event> IoFaultInjector::schedule() const {
  std::unique_lock<std::mutex> lock(mu_);
  return schedule_;
}

std::uint64_t IoFaultInjector::injected() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < 6; ++i) total += counts_[i];
  return total;
}

std::uint64_t IoFaultInjector::injected(IoFaultKind kind) const {
  std::unique_lock<std::mutex> lock(mu_);
  return counts_[static_cast<std::size_t>(kind)];
}

double IoFaultInjector::stalled_s() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stalled_s_;
}

}  // namespace xgw

#include "runtime/fault.h"

#include <algorithm>
#include <string>

#include "common/rng.h"

namespace xgw {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kStraggle:
      return "straggle";
  }
  return "unknown";
}

RankFailure::RankFailure(idx rank, int attempt, FaultKind kind)
    : Error("rank " + std::to_string(rank) + " attempt " +
            std::to_string(attempt) + " failed (" + to_string(kind) + ")"),
      rank_(rank),
      attempt_(attempt),
      kind_(kind) {}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {
  XGW_REQUIRE(spec_.p_crash >= 0.0 && spec_.p_corrupt >= 0.0 &&
                  spec_.p_straggle >= 0.0,
              "FaultSpec: probabilities must be >= 0");
  XGW_REQUIRE(spec_.p_crash + spec_.p_corrupt + spec_.p_straggle <= 1.0,
              "FaultSpec: probabilities must sum to <= 1");
  XGW_REQUIRE(spec_.straggle_factor >= 1.0,
              "FaultSpec: straggle_factor must be >= 1");
}

std::uint64_t FaultInjector::stream_seed(idx rank, int attempt) const {
  // Golden-ratio / Murmur-style mixing so that neighboring (rank, attempt)
  // pairs land in unrelated parts of the stream; Rng's splitmix64 seeding
  // finishes the job.
  std::uint64_t s = spec_.seed;
  s ^= 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(rank) + 1);
  s ^= 0xBF58476D1CE4E5B9ULL * (static_cast<std::uint64_t>(attempt) + 1);
  return s;
}

FaultKind FaultInjector::decide(idx rank, int attempt) const {
  if (std::find(spec_.kill_ranks.begin(), spec_.kill_ranks.end(), rank) !=
      spec_.kill_ranks.end())
    return FaultKind::kCrash;
  if (spec_.p_crash <= 0.0 && spec_.p_corrupt <= 0.0 &&
      spec_.p_straggle <= 0.0)
    return FaultKind::kNone;
  Rng rng(stream_seed(rank, attempt));
  const double u = rng.uniform();
  if (u < spec_.p_crash) return FaultKind::kCrash;
  if (u < spec_.p_crash + spec_.p_corrupt) return FaultKind::kCorrupt;
  if (u < spec_.p_crash + spec_.p_corrupt + spec_.p_straggle)
    return FaultKind::kStraggle;
  return FaultKind::kNone;
}

double FaultInjector::crash_fraction(idx rank, int attempt) const {
  Rng rng(stream_seed(rank, attempt) ^ 0xD6E8FEB86659FD93ULL);
  return rng.uniform(0.25, 0.75);
}

std::size_t FaultInjector::poison_index(idx rank, int attempt,
                                        std::size_t n) const {
  if (n == 0) return 0;
  Rng rng(stream_seed(rank, attempt) ^ 0xA5A5A5A55A5A5A5AULL);
  return static_cast<std::size_t>(rng.below(n));
}

}  // namespace xgw

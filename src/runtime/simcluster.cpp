#include "runtime/simcluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/timer.h"
#include "common/validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/dist.h"
#include "sched/executor.h"
#include "sched/taskgraph.h"

namespace xgw {

SimCluster::SimCluster(idx n_ranks, NetworkModel net)
    : n_ranks_(n_ranks), net_(net) {
  XGW_REQUIRE(n_ranks >= 1, "SimCluster: need at least one rank");
}

double SimCluster::RunReport::time_to_solution() const {
  double slowest = 0.0;
  for (const RankReport& r : ranks) slowest = std::max(slowest, r.compute_s);
  return slowest + comm_s + recovery_s;
}

double SimCluster::RunReport::parallel_efficiency() const {
  const double t2s = time_to_solution();
  if (t2s <= 0.0 || ranks.empty()) return 1.0;
  return serial_s / (static_cast<double>(ranks.size()) * t2s);
}

std::string SimCluster::RunReport::gantt(idx width) const {
  double slowest = 1e-300;
  for (const RankReport& r : ranks) slowest = std::max(slowest, r.compute_s);
  std::ostringstream os;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const idx bar = static_cast<idx>(
        static_cast<double>(width) * ranks[r].compute_s / slowest + 0.5);
    os << "rank " << r << " |";
    for (idx i = 0; i < bar; ++i) os << '#';
    os << "  " << ranks[r].compute_s << " s";
    if (std::find(failed_ranks.begin(), failed_ranks.end(),
                  static_cast<idx>(r)) != failed_ranks.end())
      os << "  [DEAD]";
    os << "\n";
  }
  return os.str();
}

SimCluster::RunReport SimCluster::run(const std::function<void(idx rank)>& fn,
                                      int workers) const {
  RunReport report;
  report.ranks.resize(static_cast<std::size_t>(n_ranks_));

  // One virtual-time track per simulated rank: the modeled machine runs
  // every rank concurrently, so each rank's work is drawn from virtual
  // t = 0 regardless of when the host actually executed it.
  const bool tr = obs::trace_enabled();
  std::uint32_t vpid = 0;
  if (tr) {
    vpid = obs::recorder().new_virtual_process(
        "SimCluster run (" + std::to_string(n_ranks_) + " ranks)");
    for (idx r = 0; r < n_ranks_; ++r)
      obs::recorder().name_virtual_track(vpid, static_cast<std::uint32_t>(r),
                                         "rank " + std::to_string(r));
  }

  // One task per rank; the join node gives the graph its barrier edge
  // structure. Per-rank times land in disjoint slots and are summed in
  // rank order below, so serial_s is bitwise-deterministic.
  std::vector<double> rank_time(static_cast<std::size_t>(n_ranks_), 0.0);
  sched::TaskGraph graph;
  for (idx r = 0; r < n_ranks_; ++r)
    graph.add_task("rank " + std::to_string(r),
                   [&fn, &rank_time, r] {
                     Stopwatch sw;
                     fn(r);
                     rank_time[static_cast<std::size_t>(r)] = sw.elapsed();
                   },
                   "sim.rank");
  const sched::TaskId join = graph.add_task("ranks join", [] {}, "sim.join");
  for (idx r = 0; r < n_ranks_; ++r) graph.add_edge(r, join);
  const sched::ExecStats stats = sched::Executor(workers).run(graph);

  for (idx r = 0; r < n_ranks_; ++r) {
    const double t = rank_time[static_cast<std::size_t>(r)];
    report.ranks[static_cast<std::size_t>(r)].compute_s = t;
    report.serial_s += t;
    if (tr)
      obs::recorder().virtual_complete(vpid, static_cast<std::uint32_t>(r),
                                       "run", "sim", 0.0, t);
  }
  report.workers = static_cast<idx>(stats.workers);
  report.measured_wall_s = stats.wall_s;
  report.measured_busy_s = stats.busy_s;
  return report;
}

namespace {

/// Validates every span the attempt exposed; false = NaN/Inf at the edge.
bool attempt_outputs_finite(const std::vector<std::span<cplx>>& zspans,
                            const std::vector<std::span<double>>& dspans) {
  for (const auto& s : zspans)
    if (!all_finite(std::span<const cplx>(s))) return false;
  for (const auto& s : dspans)
    if (!all_finite(std::span<const double>(s))) return false;
  return true;
}

struct AttemptResult {
  bool ok = false;
  FaultKind fault = FaultKind::kNone;
  double compute_s = 0.0;
};

}  // namespace

SimCluster::RunReport SimCluster::run_items_ft(
    idx n_items,
    const std::function<void(idx item, RankContext& ctx)>& item_fn,
    const FtOptions& opt) const {
  XGW_REQUIRE(n_items >= 0, "run_items_ft: n_items must be >= 0");
  XGW_REQUIRE(opt.max_attempts >= 1, "run_items_ft: need >= 1 attempt");
  const BlockDist dist(n_items, n_ranks_);
  const FaultInjector inj(opt.faults);
  const bool inject = opt.faults.enabled();
  const bool virt = opt.virtual_item_cost_s > 0.0;

  RunReport report;
  report.ranks.resize(static_cast<std::size_t>(n_ranks_));

  // Virtual-time fault timeline: one track per simulated rank, events
  // stamped with modeled seconds (the rank_time accumulations below), so
  // attempts, injected faults, validation catches, retries, rank deaths
  // and work redistributions are inspectable next to the real kernel spans
  // in the same Perfetto trace.
  const bool tr = obs::trace_enabled();
  std::uint32_t vpid = 0;
  if (tr) {
    vpid = obs::recorder().new_virtual_process(
        "SimCluster ft (" + std::to_string(n_ranks_) + " ranks, " +
        std::to_string(n_items) + " items)");
    for (idx r = 0; r < n_ranks_; ++r)
      obs::recorder().name_virtual_track(vpid, static_cast<std::uint32_t>(r),
                                         "rank " + std::to_string(r));
  }
  auto vtid = [](idx r) { return static_cast<std::uint32_t>(r); };

  // Executes items [b, e) as one attempt of `rank`; applies the injected
  // fate, then validates the exposed outputs (catching both injected and
  // genuine NaN/Inf at the rank edge). Recovery re-executions pass
  // inject = false: they model re-running on a known-good node. With the
  // virtual clock enabled, the attempt is charged a deterministic modeled
  // cost instead of measured wall time — fault decisions stay identical,
  // but every downstream time-derived decision (straggler deadlines) and
  // accumulator becomes exactly reproducible.
  auto attempt_items = [&](idx rank, int attempt, idx b, idx e,
                           bool with_faults) -> AttemptResult {
    const FaultKind kind =
        with_faults ? inj.decide(rank, attempt) : FaultKind::kNone;
    RankContext ctx;
    ctx.rank_ = rank;
    ctx.attempt_ = attempt;
    Stopwatch sw;
    for (idx i = b; i < e; ++i) item_fn(i, ctx);
    double t = virt ? static_cast<double>(e - b) * opt.virtual_item_cost_s
                    : sw.elapsed();

    if (kind == FaultKind::kCrash) {
      // Node died partway through: the completed fraction of the attempt
      // is wasted time; its outputs will be overwritten by the retry.
      return {false, kind, t * inj.crash_fraction(rank, attempt)};
    }
    if (kind == FaultKind::kCorrupt && !ctx.cplx_out_.empty()) {
      // Silent corruption: one exposed element becomes NaN. The guard at
      // the rank edge must catch it — this is the injected counterpart of
      // the XGW_REQUIRE-based kernel validation.
      std::span<cplx> victim = ctx.cplx_out_.front();
      if (!victim.empty()) {
        const std::size_t at =
            inj.poison_index(rank, attempt, victim.size());
        victim[at] = cplx{std::numeric_limits<double>::quiet_NaN(), 0.0};
      }
    }
    if (kind == FaultKind::kStraggle) t *= opt.faults.straggle_factor;

    if (!attempt_outputs_finite(ctx.cplx_out_, ctx.real_out_))
      return {false, FaultKind::kCorrupt, t};
    return {true, kind, t};
  };

  // Per-rank accounting slots: each rank task writes ONLY its own slot,
  // and the final report sums them in fixed rank order — the disjoint-
  // writes + fixed-order-reduction discipline that makes the ledger (and
  // the floating-point recovery_s) bitwise identical at any worker count.
  struct RankSlot {
    double time = 0.0;      ///< accumulated attempt time (virtual or wall)
    double recovery = 0.0;  ///< backoff + respawn cost of this rank's retries
    long retries = 0;
    bool dead = false;
  };
  std::vector<RankSlot> slot(static_cast<std::size_t>(n_ranks_));

  // Attempt loop for one rank — the body of that rank's task node.
  auto run_rank = [&](idx r) {
    const idx b = dist.begin(r), e = dist.end(r);
    RankSlot& s = slot[static_cast<std::size_t>(r)];
    double acc = 0.0;
    bool ok = false;
    for (int attempt = 0; attempt < opt.max_attempts; ++attempt) {
      const double t0 = acc;
      const AttemptResult res = attempt_items(r, attempt, b, e, inject);
      acc += res.compute_s;
      if (tr) {
        obs::recorder().virtual_complete(
            vpid, vtid(r), "attempt " + std::to_string(attempt), "sim", t0,
            res.compute_s,
            "\"items\":\"[" + std::to_string(b) + "," + std::to_string(e) +
                ")\",\"ok\":" + (res.ok ? "true" : "false"));
        if (res.fault != FaultKind::kNone)
          obs::recorder().virtual_instant(
              vpid, vtid(r), std::string("fault:") + to_string(res.fault),
              "fault", acc);
        if (!res.ok && res.fault == FaultKind::kCorrupt)
          obs::recorder().virtual_instant(vpid, vtid(r), "validation_failed",
                                          "fault", acc);
      }
      if (res.ok) {
        ok = true;
        break;
      }
      // Failed attempt: exponential-backoff restart plus re-fetching the
      // rank's input state — charged through the network model so recovery
      // shows up honestly in time_to_solution().
      s.retries += 1;
      obs::metrics().counter("simcluster.retries").inc();
      s.recovery += opt.backoff_base_s * std::ldexp(1.0, attempt) +
                    net_.p2p(opt.respawn_bytes);
      if (tr)
        obs::recorder().virtual_instant(
            vpid, vtid(r), "retry", "sim", acc,
            "\"attempt\":" + std::to_string(attempt));
    }
    s.time = acc;
    if (!ok) {
      s.dead = true;
      obs::metrics().counter("simcluster.rank_deaths").inc();
      if (tr)
        obs::recorder().virtual_instant(vpid, vtid(r), "rank_dead", "fault",
                                        acc);
    }
  };

  // State written by the (exclusive) recovery nodes below; `rank_time`
  // aliasing the slots keeps the recovery code close to the math.
  std::vector<idx> dead, survivors;
  double redist_recovery_s = 0.0;
  double straggler_recovery_s = 0.0;
  long straggler_retries = 0;
  bool degraded = false;

  // Dead-rank redistribution node: depends on EVERY rank task, so by the
  // time it runs it is the only task in flight and may read all slots.
  auto redistribute = [&] {
    for (idx r = 0; r < n_ranks_; ++r)
      (slot[static_cast<std::size_t>(r)].dead ? dead : survivors).push_back(r);
    XGW_REQUIRE(!survivors.empty(),
                "run_items_ft: every rank failed; cluster lost");
    for (idx d : dead) {
      const idx nb = dist.count(d);
      if (nb > 0) {
        if (tr)
          obs::recorder().virtual_instant(
              vpid, vtid(d), "redistribute", "sim",
              slot[static_cast<std::size_t>(d)].time,
              "\"items\":" + std::to_string(nb) + ",\"survivors\":" +
                  std::to_string(survivors.size()));
        const BlockDist redist(nb, static_cast<idx>(survivors.size()));
        for (std::size_t si = 0; si < survivors.size(); ++si) {
          const idx s = survivors[si];
          const idx gb = dist.begin(d) + redist.begin(static_cast<idx>(si));
          const idx ge = dist.begin(d) + redist.end(static_cast<idx>(si));
          if (gb == ge) continue;
          const double t0 = slot[static_cast<std::size_t>(s)].time;
          const AttemptResult res =
              attempt_items(s, opt.max_attempts, gb, ge, false);
          XGW_REQUIRE(res.ok, "run_items_ft: recovery execution failed");
          slot[static_cast<std::size_t>(s)].time += res.compute_s;
          if (tr)
            obs::recorder().virtual_complete(
                vpid, vtid(s), "recover", "sim", t0, res.compute_s,
                "\"from_rank\":" + std::to_string(d) + ",\"items\":\"[" +
                    std::to_string(gb) + "," + std::to_string(ge) + ")\"");
        }
        // The dead rank's inputs are shipped to every survivor.
        redist_recovery_s +=
            net_.bcast(opt.respawn_bytes, static_cast<idx>(survivors.size()));
      }
      degraded = true;
    }
  };

  // Straggler node (depends on redistribution): surviving ranks far beyond
  // the median are cancelled at the deadline and their items re-decomposed,
  // mirroring the dead-rank path (work-stealing recovery). On the virtual
  // clock the rank times — and therefore every cancellation decision — are
  // exact model quantities, reproducible at any worker count.
  auto cancel_stragglers = [&] {
    if (!(opt.straggler_deadline > 0.0) || survivors.size() < 2) return;
    std::vector<double> times;
    times.reserve(survivors.size());
    for (idx s : survivors)
      times.push_back(slot[static_cast<std::size_t>(s)].time);
    std::nth_element(times.begin(), times.begin() + times.size() / 2,
                     times.end());
    const double median = times[times.size() / 2];
    const double deadline =
        std::max(opt.straggler_deadline * median, opt.straggler_min_s);
    if (median <= 0.0) return;
    std::vector<idx> stragglers, healthy;
    for (idx s : survivors)
      (slot[static_cast<std::size_t>(s)].time > deadline ? stragglers
                                                         : healthy)
          .push_back(s);
    if (healthy.empty()) return;
    for (idx r : stragglers) {
      const idx nb = dist.count(r);
      if (nb > 0) {
        const BlockDist redist(nb, static_cast<idx>(healthy.size()));
        for (std::size_t si = 0; si < healthy.size(); ++si) {
          const idx s = healthy[si];
          const idx gb = dist.begin(r) + redist.begin(static_cast<idx>(si));
          const idx ge = dist.begin(r) + redist.end(static_cast<idx>(si));
          if (gb == ge) continue;
          const double t0 = slot[static_cast<std::size_t>(s)].time;
          const AttemptResult res =
              attempt_items(s, opt.max_attempts, gb, ge, false);
          XGW_REQUIRE(res.ok, "run_items_ft: straggler recovery failed");
          slot[static_cast<std::size_t>(s)].time += res.compute_s;
          if (tr)
            obs::recorder().virtual_complete(
                vpid, vtid(s), "recover", "sim", t0, res.compute_s,
                "\"from_rank\":" + std::to_string(r));
        }
        straggler_recovery_s +=
            net_.bcast(opt.respawn_bytes, static_cast<idx>(healthy.size()));
      }
      // The straggler is cancelled the moment the deadline fires.
      slot[static_cast<std::size_t>(r)].time = deadline;
      straggler_retries += 1;
      if (tr)
        obs::recorder().virtual_instant(vpid, vtid(r), "straggler_cancelled",
                                        "fault", deadline);
    }
  };

  // The fault-tolerant run as an explicit task graph: R concurrent rank
  // nodes -> redistribution -> straggler cancellation. One worker executes
  // the graph in deterministic Kahn order — exactly the old serial code
  // path; W workers overlap the rank attempts for real.
  sched::TaskGraph graph;
  for (idx r = 0; r < n_ranks_; ++r)
    graph.add_task("ft rank " + std::to_string(r), [&run_rank, r] { run_rank(r); },
                   "ft.rank", static_cast<double>(dist.count(r)));
  const sched::TaskId redist_id =
      graph.add_task("redistribute", redistribute, "ft.redistribute");
  for (idx r = 0; r < n_ranks_; ++r) graph.add_edge(r, redist_id);
  const sched::TaskId straggle_id =
      graph.add_task("stragglers", cancel_stragglers, "ft.straggler");
  graph.add_edge(redist_id, straggle_id);
  const sched::ExecStats stats = sched::Executor(opt.workers).run(graph);

  // Fixed-order reduction of the per-rank slots (rank ascending, then the
  // redistribution and straggler phases) — the exact accumulation order of
  // the old serial implementation.
  for (idx r = 0; r < n_ranks_; ++r) {
    const RankSlot& s = slot[static_cast<std::size_t>(r)];
    report.ranks[static_cast<std::size_t>(r)].compute_s = s.time;
    report.serial_s += s.time;
    report.retries += s.retries;
    report.recovery_s += s.recovery;
  }
  report.recovery_s += redist_recovery_s + straggler_recovery_s;
  report.retries += straggler_retries;
  report.failed_ranks = dead;
  report.degraded = degraded;
  report.workers = static_cast<idx>(stats.workers);
  report.measured_wall_s = stats.wall_s;
  report.measured_busy_s = stats.busy_s;
  return report;
}

void SimCluster::cost_allreduce(RunReport& report, double bytes) const {
  report.comm_s += net_.allreduce(bytes, n_ranks_);
}

void SimCluster::cost_allgather(RunReport& report,
                                double bytes_per_rank) const {
  report.comm_s += net_.allgather(bytes_per_rank, n_ranks_);
}

}  // namespace xgw

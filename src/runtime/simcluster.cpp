#include "runtime/simcluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/timer.h"
#include "common/validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/dist.h"

namespace xgw {

SimCluster::SimCluster(idx n_ranks, NetworkModel net)
    : n_ranks_(n_ranks), net_(net) {
  XGW_REQUIRE(n_ranks >= 1, "SimCluster: need at least one rank");
}

double SimCluster::RunReport::time_to_solution() const {
  double slowest = 0.0;
  for (const RankReport& r : ranks) slowest = std::max(slowest, r.compute_s);
  return slowest + comm_s + recovery_s;
}

double SimCluster::RunReport::parallel_efficiency() const {
  const double t2s = time_to_solution();
  if (t2s <= 0.0 || ranks.empty()) return 1.0;
  return serial_s / (static_cast<double>(ranks.size()) * t2s);
}

std::string SimCluster::RunReport::gantt(idx width) const {
  double slowest = 1e-300;
  for (const RankReport& r : ranks) slowest = std::max(slowest, r.compute_s);
  std::ostringstream os;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const idx bar = static_cast<idx>(
        static_cast<double>(width) * ranks[r].compute_s / slowest + 0.5);
    os << "rank " << r << " |";
    for (idx i = 0; i < bar; ++i) os << '#';
    os << "  " << ranks[r].compute_s << " s";
    if (std::find(failed_ranks.begin(), failed_ranks.end(),
                  static_cast<idx>(r)) != failed_ranks.end())
      os << "  [DEAD]";
    os << "\n";
  }
  return os.str();
}

SimCluster::RunReport SimCluster::run(
    const std::function<void(idx rank)>& fn) const {
  RunReport report;
  report.ranks.resize(static_cast<std::size_t>(n_ranks_));

  // One virtual-time track per simulated rank: ranks execute sequentially
  // on the host, but the modeled machine runs them concurrently, so every
  // rank's work is drawn from virtual t = 0.
  const bool tr = obs::trace_enabled();
  std::uint32_t vpid = 0;
  if (tr) {
    vpid = obs::recorder().new_virtual_process(
        "SimCluster run (" + std::to_string(n_ranks_) + " ranks)");
    for (idx r = 0; r < n_ranks_; ++r)
      obs::recorder().name_virtual_track(vpid, static_cast<std::uint32_t>(r),
                                         "rank " + std::to_string(r));
  }

  for (idx r = 0; r < n_ranks_; ++r) {
    Stopwatch sw;
    fn(r);
    const double t = sw.elapsed();
    report.ranks[static_cast<std::size_t>(r)].compute_s = t;
    report.serial_s += t;
    if (tr)
      obs::recorder().virtual_complete(vpid, static_cast<std::uint32_t>(r),
                                       "run", "sim", 0.0, t);
  }
  return report;
}

namespace {

/// Validates every span the attempt exposed; false = NaN/Inf at the edge.
bool attempt_outputs_finite(const std::vector<std::span<cplx>>& zspans,
                            const std::vector<std::span<double>>& dspans) {
  for (const auto& s : zspans)
    if (!all_finite(std::span<const cplx>(s))) return false;
  for (const auto& s : dspans)
    if (!all_finite(std::span<const double>(s))) return false;
  return true;
}

struct AttemptResult {
  bool ok = false;
  FaultKind fault = FaultKind::kNone;
  double compute_s = 0.0;
};

}  // namespace

SimCluster::RunReport SimCluster::run_items_ft(
    idx n_items,
    const std::function<void(idx item, RankContext& ctx)>& item_fn,
    const FtOptions& opt) const {
  XGW_REQUIRE(n_items >= 0, "run_items_ft: n_items must be >= 0");
  XGW_REQUIRE(opt.max_attempts >= 1, "run_items_ft: need >= 1 attempt");
  const BlockDist dist(n_items, n_ranks_);
  const FaultInjector inj(opt.faults);
  const bool inject = opt.faults.enabled();

  RunReport report;
  report.ranks.resize(static_cast<std::size_t>(n_ranks_));

  // Virtual-time fault timeline: one track per simulated rank, events
  // stamped with modeled seconds (the rank_time accumulations below), so
  // attempts, injected faults, validation catches, retries, rank deaths
  // and work redistributions are inspectable next to the real kernel spans
  // in the same Perfetto trace.
  const bool tr = obs::trace_enabled();
  std::uint32_t vpid = 0;
  if (tr) {
    vpid = obs::recorder().new_virtual_process(
        "SimCluster ft (" + std::to_string(n_ranks_) + " ranks, " +
        std::to_string(n_items) + " items)");
    for (idx r = 0; r < n_ranks_; ++r)
      obs::recorder().name_virtual_track(vpid, static_cast<std::uint32_t>(r),
                                         "rank " + std::to_string(r));
  }
  auto vtid = [](idx r) { return static_cast<std::uint32_t>(r); };

  // Executes items [b, e) as one attempt of `rank`; applies the injected
  // fate, then validates the exposed outputs (catching both injected and
  // genuine NaN/Inf at the rank edge). Recovery re-executions pass
  // inject = false: they model re-running on a known-good node.
  auto attempt_items = [&](idx rank, int attempt, idx b, idx e,
                           bool with_faults) -> AttemptResult {
    const FaultKind kind =
        with_faults ? inj.decide(rank, attempt) : FaultKind::kNone;
    RankContext ctx;
    ctx.rank_ = rank;
    ctx.attempt_ = attempt;
    Stopwatch sw;
    for (idx i = b; i < e; ++i) item_fn(i, ctx);
    double t = sw.elapsed();

    if (kind == FaultKind::kCrash) {
      // Node died partway through: the completed fraction of the attempt
      // is wasted time; its outputs will be overwritten by the retry.
      return {false, kind, t * inj.crash_fraction(rank, attempt)};
    }
    if (kind == FaultKind::kCorrupt && !ctx.cplx_out_.empty()) {
      // Silent corruption: one exposed element becomes NaN. The guard at
      // the rank edge must catch it — this is the injected counterpart of
      // the XGW_REQUIRE-based kernel validation.
      std::span<cplx> victim = ctx.cplx_out_.front();
      if (!victim.empty()) {
        const std::size_t at =
            inj.poison_index(rank, attempt, victim.size());
        victim[at] = cplx{std::numeric_limits<double>::quiet_NaN(), 0.0};
      }
    }
    if (kind == FaultKind::kStraggle) t *= opt.faults.straggle_factor;

    if (!attempt_outputs_finite(ctx.cplx_out_, ctx.real_out_))
      return {false, FaultKind::kCorrupt, t};
    return {true, kind, t};
  };

  std::vector<double> rank_time(static_cast<std::size_t>(n_ranks_), 0.0);
  std::vector<idx> dead;

  for (idx r = 0; r < n_ranks_; ++r) {
    const idx b = dist.begin(r), e = dist.end(r);
    double acc = 0.0;
    bool ok = false;
    for (int attempt = 0; attempt < opt.max_attempts; ++attempt) {
      const double t0 = acc;
      const AttemptResult res = attempt_items(r, attempt, b, e, inject);
      acc += res.compute_s;
      if (tr) {
        obs::recorder().virtual_complete(
            vpid, vtid(r), "attempt " + std::to_string(attempt), "sim", t0,
            res.compute_s,
            "\"items\":\"[" + std::to_string(b) + "," + std::to_string(e) +
                ")\",\"ok\":" + (res.ok ? "true" : "false"));
        if (res.fault != FaultKind::kNone)
          obs::recorder().virtual_instant(
              vpid, vtid(r), std::string("fault:") + to_string(res.fault),
              "fault", acc);
        if (!res.ok && res.fault == FaultKind::kCorrupt)
          obs::recorder().virtual_instant(vpid, vtid(r), "validation_failed",
                                          "fault", acc);
      }
      if (res.ok) {
        ok = true;
        break;
      }
      // Failed attempt: exponential-backoff restart plus re-fetching the
      // rank's input state — charged through the network model so recovery
      // shows up honestly in time_to_solution().
      report.retries += 1;
      obs::metrics().counter("simcluster.retries").inc();
      report.recovery_s += opt.backoff_base_s * std::ldexp(1.0, attempt) +
                           net_.p2p(opt.respawn_bytes);
      if (tr)
        obs::recorder().virtual_instant(
            vpid, vtid(r), "retry", "sim", acc,
            "\"attempt\":" + std::to_string(attempt));
    }
    rank_time[static_cast<std::size_t>(r)] = acc;
    if (!ok) {
      dead.push_back(r);
      obs::metrics().counter("simcluster.rank_deaths").inc();
      if (tr)
        obs::recorder().virtual_instant(vpid, vtid(r), "rank_dead", "fault",
                                        acc);
    }
  }

  std::vector<idx> survivors;
  for (idx r = 0; r < n_ranks_; ++r)
    if (std::find(dead.begin(), dead.end(), r) == dead.end())
      survivors.push_back(r);
  XGW_REQUIRE(!survivors.empty(),
              "run_items_ft: every rank failed; cluster lost");

  // Dead ranks: re-decompose their item blocks over the survivors.
  for (idx d : dead) {
    const idx nb = dist.count(d);
    if (nb > 0) {
      if (tr)
        obs::recorder().virtual_instant(
            vpid, vtid(d), "redistribute", "sim",
            rank_time[static_cast<std::size_t>(d)],
            "\"items\":" + std::to_string(nb) + ",\"survivors\":" +
                std::to_string(survivors.size()));
      const BlockDist redist(nb, static_cast<idx>(survivors.size()));
      for (std::size_t si = 0; si < survivors.size(); ++si) {
        const idx s = survivors[si];
        const idx gb = dist.begin(d) + redist.begin(static_cast<idx>(si));
        const idx ge = dist.begin(d) + redist.end(static_cast<idx>(si));
        if (gb == ge) continue;
        const double t0 = rank_time[static_cast<std::size_t>(s)];
        const AttemptResult res =
            attempt_items(s, opt.max_attempts, gb, ge, false);
        XGW_REQUIRE(res.ok, "run_items_ft: recovery execution failed");
        rank_time[static_cast<std::size_t>(s)] += res.compute_s;
        if (tr)
          obs::recorder().virtual_complete(
              vpid, vtid(s), "recover", "sim", t0, res.compute_s,
              "\"from_rank\":" + std::to_string(d) + ",\"items\":\"[" +
                  std::to_string(gb) + "," + std::to_string(ge) + ")\"");
      }
      // The dead rank's inputs are shipped to every survivor.
      report.recovery_s +=
          net_.bcast(opt.respawn_bytes, static_cast<idx>(survivors.size()));
    }
    report.degraded = true;
  }
  report.failed_ranks = dead;

  // Straggler detection: surviving ranks far beyond the median are
  // cancelled at the deadline and their items re-decomposed, mirroring the
  // dead-rank path (work-stealing recovery).
  if (opt.straggler_deadline > 0.0 && survivors.size() >= 2) {
    std::vector<double> times;
    times.reserve(survivors.size());
    for (idx s : survivors)
      times.push_back(rank_time[static_cast<std::size_t>(s)]);
    std::nth_element(times.begin(), times.begin() + times.size() / 2,
                     times.end());
    const double median = times[times.size() / 2];
    const double deadline =
        std::max(opt.straggler_deadline * median, opt.straggler_min_s);
    if (median > 0.0) {
      std::vector<idx> stragglers, healthy;
      for (idx s : survivors)
        (rank_time[static_cast<std::size_t>(s)] > deadline ? stragglers
                                                           : healthy)
            .push_back(s);
      if (!healthy.empty()) {
        for (idx r : stragglers) {
          const idx nb = dist.count(r);
          if (nb > 0) {
            const BlockDist redist(nb, static_cast<idx>(healthy.size()));
            for (std::size_t si = 0; si < healthy.size(); ++si) {
              const idx s = healthy[si];
              const idx gb =
                  dist.begin(r) + redist.begin(static_cast<idx>(si));
              const idx ge = dist.begin(r) + redist.end(static_cast<idx>(si));
              if (gb == ge) continue;
              const double t0 = rank_time[static_cast<std::size_t>(s)];
              const AttemptResult res =
                  attempt_items(s, opt.max_attempts, gb, ge, false);
              XGW_REQUIRE(res.ok,
                          "run_items_ft: straggler recovery failed");
              rank_time[static_cast<std::size_t>(s)] += res.compute_s;
              if (tr)
                obs::recorder().virtual_complete(
                    vpid, vtid(s), "recover", "sim", t0, res.compute_s,
                    "\"from_rank\":" + std::to_string(r));
            }
            report.recovery_s += net_.bcast(
                opt.respawn_bytes, static_cast<idx>(healthy.size()));
          }
          // The straggler is cancelled the moment the deadline fires.
          rank_time[static_cast<std::size_t>(r)] = deadline;
          report.retries += 1;
          if (tr)
            obs::recorder().virtual_instant(vpid, vtid(r),
                                            "straggler_cancelled", "fault",
                                            deadline);
        }
      }
    }
  }

  for (idx r = 0; r < n_ranks_; ++r) {
    report.ranks[static_cast<std::size_t>(r)].compute_s =
        rank_time[static_cast<std::size_t>(r)];
    report.serial_s += rank_time[static_cast<std::size_t>(r)];
  }
  return report;
}

void SimCluster::cost_allreduce(RunReport& report, double bytes) const {
  report.comm_s += net_.allreduce(bytes, n_ranks_);
}

void SimCluster::cost_allgather(RunReport& report,
                                double bytes_per_rank) const {
  report.comm_s += net_.allgather(bytes_per_rank, n_ranks_);
}

}  // namespace xgw

#include "runtime/simcluster.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/timer.h"

namespace xgw {

SimCluster::SimCluster(idx n_ranks, NetworkModel net)
    : n_ranks_(n_ranks), net_(net) {
  XGW_REQUIRE(n_ranks >= 1, "SimCluster: need at least one rank");
}

double SimCluster::RunReport::time_to_solution() const {
  double slowest = 0.0;
  for (const RankReport& r : ranks) slowest = std::max(slowest, r.compute_s);
  return slowest + comm_s;
}

double SimCluster::RunReport::parallel_efficiency() const {
  const double t2s = time_to_solution();
  if (t2s <= 0.0 || ranks.empty()) return 1.0;
  return serial_s / (static_cast<double>(ranks.size()) * t2s);
}

std::string SimCluster::RunReport::gantt(idx width) const {
  double slowest = 1e-300;
  for (const RankReport& r : ranks) slowest = std::max(slowest, r.compute_s);
  std::ostringstream os;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const idx bar = static_cast<idx>(
        static_cast<double>(width) * ranks[r].compute_s / slowest + 0.5);
    os << "rank " << r << " |";
    for (idx i = 0; i < bar; ++i) os << '#';
    os << "  " << ranks[r].compute_s << " s\n";
  }
  return os.str();
}

SimCluster::RunReport SimCluster::run(
    const std::function<void(idx rank)>& fn) const {
  RunReport report;
  report.ranks.resize(static_cast<std::size_t>(n_ranks_));
  for (idx r = 0; r < n_ranks_; ++r) {
    Stopwatch sw;
    fn(r);
    const double t = sw.elapsed();
    report.ranks[static_cast<std::size_t>(r)].compute_s = t;
    report.serial_s += t;
  }
  return report;
}

void SimCluster::cost_allreduce(RunReport& report, double bytes) const {
  report.comm_s += net_.allreduce(bytes, n_ranks_);
}

void SimCluster::cost_allgather(RunReport& report,
                                double bytes_per_rank) const {
  report.comm_s += net_.allgather(bytes_per_rank, n_ranks_);
}

}  // namespace xgw

#pragma once

// Band solvers for the plane-wave mean field.
//
// This is the Parabands substrate: the paper's workflow needs a LARGE band
// set {psi_n} (up to 80,695 bands for Si2742) which BerkeleyGW generates
// with a dedicated Parabands module rather than the DFT code's iterative
// solver. Here:
//  * solve_dense     — full diagonalization; exact, O(N_G^3); the "Parabands"
//                      path when all (or most) bands are wanted.
//  * solve_davidson  — block-Davidson iterative solver for the lowest
//                      n_bands; the "DFT-solver" path, efficient when
//                      n_bands << N_G.
// Both produce the same Wavefunctions container; tests cross-validate them.

#include "mf/hamiltonian.h"
#include "mf/wavefunctions.h"

namespace xgw {

/// Full dense diagonalization, keeping the lowest n_bands (<= 0 keeps all).
Wavefunctions solve_dense(const PwHamiltonian& h, idx n_bands = -1);

struct DavidsonOptions {
  idx max_iter = 200;
  double residual_tol = 1e-8;   ///< convergence: max ||H x - theta x||
  idx max_subspace_mult = 4;    ///< restart when subspace > mult * n_bands
  std::uint64_t seed = 12345;   ///< random initial block augmentation
};

/// Block-Davidson for the lowest n_bands eigenpairs (matrix-free H).
Wavefunctions solve_davidson(const PwHamiltonian& h, idx n_bands,
                             const DavidsonOptions& opt = {});

}  // namespace xgw

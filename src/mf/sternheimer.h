#pragma once

// Generic projected Sternheimer linear solver:
//   x = P (H - e0)^{-1} P rhs,   P = 1 - sum_{m in project_bands} |m><m|,
// by conjugate gradients on the normal equations (the projected operator
// is Hermitian but indefinite; CGNR is robust at these problem sizes and
// needs only matrix-free H applications).
//
// This is the building block of linear-response workflows that avoid
// explicit empty states: DFPT d psi solves (gwpt/dfpt.h) and the
// Sternheimer polarizability (core/sternheimer_chi.h) — the approach of
// the paper's refs [9-11] (Umari, Giustino, Govoni et al.).

#include <vector>

#include "mf/hamiltonian.h"
#include "mf/wavefunctions.h"

namespace xgw {

struct SternheimerOptions {
  idx max_iter = 400;
  double tol = 1e-9;        ///< residual norm target (relative to ||rhs||)
  double degen_tol = 1e-6;  ///< degeneracy detection for dpsi solves
};

std::vector<cplx> sternheimer_solve(const PwHamiltonian& h,
                                    const Wavefunctions& wf, double e0,
                                    std::vector<cplx> rhs,
                                    const std::vector<idx>& project_bands,
                                    const SternheimerOptions& opt = {});

}  // namespace xgw

#include "mf/solver.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "la/eig.h"
#include "la/gemm.h"
#include "la/orth.h"

namespace xgw {

Wavefunctions solve_dense(const PwHamiltonian& h, idx n_bands) {
  const idx n = h.n_pw();
  if (n_bands <= 0) n_bands = n;
  XGW_REQUIRE(n_bands <= n, "solve_dense: more bands than basis functions");

  const EigResult eig = heev(h.dense());

  Wavefunctions wf;
  wf.coeff = ZMatrix(n_bands, n);
  wf.energy.resize(static_cast<std::size_t>(n_bands));
  for (idx b = 0; b < n_bands; ++b) {
    wf.energy[static_cast<std::size_t>(b)] =
        eig.values[static_cast<std::size_t>(b)];
    for (idx ig = 0; ig < n; ++ig) wf.coeff(b, ig) = eig.vectors(ig, b);
  }
  wf.n_valence = std::min(h.model().n_valence_bands(), n_bands);
  return wf;
}

namespace {

// Rayleigh-Ritz: given orthonormal V (n x m) and HV, diagonalize V^H H V and
// rotate. Returns Ritz values; V, HV are replaced by the rotated versions.
std::vector<double> rayleigh_ritz(ZMatrix& v, ZMatrix& hv) {
  const idx m = v.cols();
  ZMatrix proj(m, m);
  zgemm(Op::kConjTrans, Op::kNone, cplx{1.0, 0.0}, v, hv, cplx{}, proj);
  const EigResult eig = heev(proj);

  ZMatrix vr(v.rows(), m), hvr(v.rows(), m);
  // V and HV rotate by the SAME eigenvector matrix: batch the two products
  // so the shared right operand is packed once.
  zgemm_batch(Op::kNone, Op::kNone, cplx{1.0, 0.0}, {{&v, &vr}, {&hv, &hvr}},
              eig.vectors, cplx{});
  v = std::move(vr);
  hv = std::move(hvr);
  return eig.values;
}

}  // namespace

Wavefunctions solve_davidson(const PwHamiltonian& h, idx n_bands,
                             const DavidsonOptions& opt) {
  const idx n = h.n_pw();
  XGW_REQUIRE(n_bands >= 1 && n_bands <= n, "solve_davidson: bad band count");
  const idx max_subspace =
      std::min(n, std::max(n_bands + 2, opt.max_subspace_mult * n_bands));

  // Initial block: lowest-kinetic unit vectors (the sphere is sorted by
  // |G|^2, so these are the free-electron ground states) plus small random
  // noise to break symmetry-induced invariant subspaces.
  Rng rng(opt.seed);
  ZMatrix v(n, std::min(max_subspace, n_bands + std::min<idx>(n_bands, 8)));
  for (idx j = 0; j < v.cols(); ++j) {
    v(j % n, j) = 1.0;
    for (idx i = 0; i < n; ++i) v(i, j) += 0.02 * rng.normal_cplx();
  }
  orthonormalize_columns(v);

  ZMatrix hv(n, v.cols());
  h.apply_block(v, hv);

  std::vector<double> ritz;
  for (idx it = 0; it < opt.max_iter; ++it) {
    ritz = rayleigh_ritz(v, hv);

    // Residuals for the lowest n_bands Ritz pairs.
    ZMatrix res(n, n_bands);
    double worst = 0.0;
    for (idx j = 0; j < n_bands; ++j) {
      double norm2 = 0.0;
      for (idx i = 0; i < n; ++i) {
        const cplx r = hv(i, j) - ritz[static_cast<std::size_t>(j)] * v(i, j);
        res(i, j) = r;
        norm2 += std::norm(r);
      }
      worst = std::max(worst, std::sqrt(norm2));
    }
    if (worst < opt.residual_tol) break;

    // Preconditioned correction t = r / (T(G) + <V> - theta).
    for (idx j = 0; j < n_bands; ++j) {
      for (idx i = 0; i < n; ++i) {
        double denom = h.kinetic(i) - ritz[static_cast<std::size_t>(j)];
        if (std::abs(denom) < 0.1) denom = std::copysign(0.1, denom == 0.0 ? 1.0 : denom);
        res(i, j) /= denom;
      }
    }

    // Restart if the subspace would exceed the cap: keep the current Ritz
    // vectors (lowest n_bands plus a small buffer).
    if (v.cols() + n_bands > max_subspace) {
      const idx keep = std::min(v.cols(), n_bands + std::min<idx>(n_bands, 8));
      ZMatrix vk(n, keep), hvk(n, keep);
      for (idx j = 0; j < keep; ++j)
        for (idx i = 0; i < n; ++i) {
          vk(i, j) = v(i, j);
          hvk(i, j) = hv(i, j);
        }
      v = std::move(vk);
      hv = std::move(hvk);
    }

    // Orthogonalize corrections against the subspace and append.
    project_out(v, res);
    const idx added = orthonormalize_columns(res, 1e-8);
    if (added == 0) {
      log_warn("davidson: corrections linearly dependent; stopping at ",
               worst, " residual");
      break;
    }
    ZMatrix hres(n, res.cols());
    h.apply_block(res, hres);

    ZMatrix vnew(n, v.cols() + res.cols()), hvnew(n, v.cols() + res.cols());
    for (idx i = 0; i < n; ++i) {
      for (idx j = 0; j < v.cols(); ++j) {
        vnew(i, j) = v(i, j);
        hvnew(i, j) = hv(i, j);
      }
      for (idx j = 0; j < res.cols(); ++j) {
        vnew(i, v.cols() + j) = res(i, j);
        hvnew(i, v.cols() + j) = hres(i, j);
      }
    }
    v = std::move(vnew);
    hv = std::move(hvnew);
  }

  ritz = rayleigh_ritz(v, hv);

  Wavefunctions wf;
  wf.coeff = ZMatrix(n_bands, n);
  wf.energy.assign(ritz.begin(), ritz.begin() + n_bands);
  for (idx b = 0; b < n_bands; ++b)
    for (idx ig = 0; ig < n; ++ig) wf.coeff(b, ig) = v(ig, b);
  wf.n_valence = std::min(h.model().n_valence_bands(), n_bands);
  return wf;
}

}  // namespace xgw

#include "mf/dos.h"

#include <cmath>

#include "common/error.h"

namespace xgw {

namespace {
double gaussian(double x, double s) {
  return std::exp(-0.5 * x * x / (s * s)) / (s * std::sqrt(kTwoPi));
}
}  // namespace

double DosCurve::integral() const {
  double acc = 0.0;
  for (std::size_t i = 1; i < energy.size(); ++i)
    acc += 0.5 * (value[i] + value[i - 1]) * (energy[i] - energy[i - 1]);
  return acc;
}

DosCurve density_of_states(const Wavefunctions& wf, double sigma, idx n_grid,
                           double margin) {
  XGW_REQUIRE(sigma > 0.0 && n_grid >= 2, "dos: bad parameters");
  const double lo = wf.energy.front() - margin;
  const double hi = wf.energy.back() + margin;

  DosCurve dos;
  dos.energy.resize(static_cast<std::size_t>(n_grid));
  dos.value.assign(static_cast<std::size_t>(n_grid), 0.0);
  for (idx i = 0; i < n_grid; ++i)
    dos.energy[static_cast<std::size_t>(i)] =
        lo + (hi - lo) * static_cast<double>(i) /
                 static_cast<double>(n_grid - 1);

  for (double en : wf.energy)
    for (idx i = 0; i < n_grid; ++i)
      dos.value[static_cast<std::size_t>(i)] +=
          2.0 * gaussian(dos.energy[static_cast<std::size_t>(i)] - en, sigma);
  return dos;
}

DosCurve joint_density_of_states(const Wavefunctions& wf, double sigma,
                                 idx n_grid, double w_max) {
  XGW_REQUIRE(sigma > 0.0 && n_grid >= 2 && w_max > 0.0, "jdos: bad parameters");
  DosCurve jdos;
  jdos.energy.resize(static_cast<std::size_t>(n_grid));
  jdos.value.assign(static_cast<std::size_t>(n_grid), 0.0);
  for (idx i = 0; i < n_grid; ++i)
    jdos.energy[static_cast<std::size_t>(i)] =
        w_max * static_cast<double>(i) / static_cast<double>(n_grid - 1);

  for (idx v = 0; v < wf.n_valence; ++v)
    for (idx c = wf.n_valence; c < wf.n_bands(); ++c) {
      const double de = wf.energy[static_cast<std::size_t>(c)] -
                        wf.energy[static_cast<std::size_t>(v)];
      if (de > w_max + 5.0 * sigma) continue;
      for (idx i = 0; i < n_grid; ++i)
        jdos.value[static_cast<std::size_t>(i)] +=
            2.0 *
            gaussian(jdos.energy[static_cast<std::size_t>(i)] - de, sigma);
    }
  return jdos;
}

}  // namespace xgw

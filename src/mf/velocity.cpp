#include "mf/velocity.h"

#include "common/error.h"

namespace xgw {

MomentumOperator::MomentumOperator(const GSphere& sphere,
                                   const Lattice& lattice) {
  gcart_.resize(static_cast<std::size_t>(sphere.size()));
  for (idx ig = 0; ig < sphere.size(); ++ig)
    gcart_[static_cast<std::size_t>(ig)] = sphere.cart(lattice, ig);
}

std::array<cplx, 3> MomentumOperator::pair(const Wavefunctions& wf, idx m,
                                           idx n) const {
  XGW_REQUIRE(wf.n_pw() == static_cast<idx>(gcart_.size()),
              "MomentumOperator: basis mismatch");
  XGW_REQUIRE(m >= 0 && m < wf.n_bands() && n >= 0 && n < wf.n_bands(),
              "MomentumOperator: band out of range");
  const cplx* cm = wf.coeff.row(m);
  const cplx* cn = wf.coeff.row(n);
  std::array<cplx, 3> p{};
  for (std::size_t ig = 0; ig < gcart_.size(); ++ig) {
    const cplx w = std::conj(cm[ig]) * cn[ig];
    const Vec3& g = gcart_[ig];
    p[0] += w * g[0];
    p[1] += w * g[1];
    p[2] += w * g[2];
  }
  return p;
}

double MomentumOperator::pair_norm2(const Wavefunctions& wf, idx m,
                                    idx n) const {
  const auto p = pair(wf, m, n);
  return std::norm(p[0]) + std::norm(p[1]) + std::norm(p[2]);
}

}  // namespace xgw

#pragma once

// Band structure along k-paths for the EPM mean field.
//
// The GW workloads of the paper are Gamma-only supercells, but validating
// the mean-field substrate requires the primitive-cell band structure: the
// Cohen-Bergstresser silicon model must show the familiar valence manifold
// and an indirect gap with the conduction minimum along Gamma-X. This
// module builds H(k) = 1/2 |k+G|^2 + V(G-G') at arbitrary k (crystal
// coordinates of the reciprocal cell) and diagonalizes it.

#include <string>
#include <vector>

#include "mf/epm.h"
#include "mf/wavefunctions.h"

namespace xgw {

/// High-symmetry point with a label ("G", "X", "L", ...), in crystal
/// coordinates of the reciprocal lattice (units of b1, b2, b3).
struct KPoint {
  Vec3 frac{0, 0, 0};
  std::string label;
};

/// Eigenvalues at one k.
struct BandsAtK {
  Vec3 k_frac;
  double path_length = 0.0;          ///< cumulative |dk| along the path (1/Bohr)
  std::vector<double> energy;        ///< lowest n_bands eigenvalues (Ha)
};

/// Dense diagonalization of H(k) for the lowest n_bands.
BandsAtK solve_at_k(const EpmModel& model, const Vec3& k_frac, idx n_bands,
                    double cutoff = -1.0);

/// Bands along a piecewise-linear path through `points`, with
/// `segments` interior samples per leg.
std::vector<BandsAtK> band_path(const EpmModel& model,
                                const std::vector<KPoint>& points,
                                idx segments, idx n_bands,
                                double cutoff = -1.0);

/// Standard FCC path L - Gamma - X (crystal coordinates of the FCC
/// reciprocal cell: L = (1/2,1/2,1/2), X = (0,1/2,1/2)).
std::vector<KPoint> fcc_lgx_path();

/// Indirect and direct gap over a sampled path, for a model with
/// `n_valence` occupied bands: returns {E_gap_indirect, E_gap_direct} (Ha).
struct GapInfo {
  double indirect;
  double direct;
  Vec3 vbm_k, cbm_k;
};
GapInfo path_gaps(const std::vector<BandsAtK>& bands, idx n_valence);

}  // namespace xgw

#pragma once

// Band-set container — the "{psi_n, E_n}" that flows from the mean field
// (or the Parabands / pseudobands constructors) into the GW modules.

#include <vector>

#include "la/matrix.h"
#include "pw/gvectors.h"

namespace xgw {

/// N_b bands on a plane-wave sphere. Bands are stored as ROWS
/// (coeff(n, ig)): the GW kernels stream over band pairs, and row-major
/// band storage keeps each band contiguous.
struct Wavefunctions {
  ZMatrix coeff;                ///< N_b x N_G^psi coefficients
  std::vector<double> energy;   ///< E_n, Hartree, ascending
  idx n_valence = 0;            ///< first n_valence bands are occupied

  idx n_bands() const { return coeff.rows(); }
  idx n_pw() const { return coeff.cols(); }
  idx n_conduction() const { return n_bands() - n_valence; }

  /// Kohn-Sham gap E_{v+1} - E_v (Hartree); requires at least one empty band.
  double gap() const {
    return energy[static_cast<std::size_t>(n_valence)] -
           energy[static_cast<std::size_t>(n_valence - 1)];
  }

  /// Truncated copy with the lowest `nb` bands.
  Wavefunctions truncated(idx nb) const;

  /// Max |<m|n> - delta_mn| over all band pairs — orthonormality check.
  double orthonormality_error() const;
};

}  // namespace xgw

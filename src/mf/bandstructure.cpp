#include "mf/bandstructure.h"

#include <cmath>

#include "common/error.h"
#include "la/eig.h"
#include "pw/gvectors.h"

namespace xgw {

BandsAtK solve_at_k(const EpmModel& model, const Vec3& k_frac, idx n_bands,
                    double cutoff) {
  const Lattice& lat = model.crystal().lattice();
  if (cutoff <= 0.0) cutoff = model.default_cutoff();

  // Cartesian k.
  Vec3 kc{0, 0, 0};
  for (int i = 0; i < 3; ++i)
    kc = kc + k_frac[static_cast<std::size_t>(i)] * lat.b(i);

  // Basis: |k+G|^2/2 <= cutoff would shift the sphere with k; using the
  // k = 0 sphere with a margin keeps the basis size k-independent (standard
  // for band-structure scans) — enlarge the cutoff by the |k| head room.
  const double kmax2 = dot(kc, kc);
  const GSphere sphere(lat, cutoff + 0.5 * kmax2 + std::sqrt(2.0 * cutoff * kmax2));
  const idx ng = sphere.size();
  XGW_REQUIRE(n_bands >= 1 && n_bands <= ng, "solve_at_k: bad band count");

  ZMatrix h(ng, ng);
  for (idx g = 0; g < ng; ++g) {
    const IVec3 mg = sphere.miller(g);
    for (idx gp = 0; gp < ng; ++gp) {
      const IVec3 mgp = sphere.miller(gp);
      h(g, gp) = model.v_of_g({mg[0] - mgp[0], mg[1] - mgp[1], mg[2] - mgp[2]});
    }
    const Vec3 kg = kc + sphere.cart(lat, g);
    h(g, g) += 0.5 * dot(kg, kg);
  }

  const EigResult eig = heev(h);
  BandsAtK out;
  out.k_frac = k_frac;
  out.energy.assign(eig.values.begin(), eig.values.begin() + n_bands);
  return out;
}

std::vector<BandsAtK> band_path(const EpmModel& model,
                                const std::vector<KPoint>& points,
                                idx segments, idx n_bands, double cutoff) {
  XGW_REQUIRE(points.size() >= 2, "band_path: need at least two k-points");
  XGW_REQUIRE(segments >= 1, "band_path: segments must be >= 1");
  const Lattice& lat = model.crystal().lattice();

  std::vector<BandsAtK> out;
  double path_len = 0.0;
  Vec3 prev_cart{0, 0, 0};
  bool first = true;

  for (std::size_t leg = 0; leg + 1 < points.size(); ++leg) {
    const Vec3& a = points[leg].frac;
    const Vec3& b = points[leg + 1].frac;
    const idx start = (leg == 0) ? 0 : 1;  // avoid duplicating joints
    for (idx s = start; s <= segments; ++s) {
      const double t = static_cast<double>(s) / static_cast<double>(segments);
      const Vec3 k{a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1]),
                   a[2] + t * (b[2] - a[2])};
      BandsAtK bk = solve_at_k(model, k, n_bands, cutoff);
      Vec3 kcart{0, 0, 0};
      for (int i = 0; i < 3; ++i)
        kcart = kcart + k[static_cast<std::size_t>(i)] * lat.b(i);
      if (!first) {
        const Vec3 d = kcart - prev_cart;
        path_len += std::sqrt(dot(d, d));
      }
      first = false;
      prev_cart = kcart;
      bk.path_length = path_len;
      out.push_back(std::move(bk));
    }
  }
  return out;
}

std::vector<KPoint> fcc_lgx_path() {
  return {{{0.5, 0.5, 0.5}, "L"}, {{0.0, 0.0, 0.0}, "G"},
          {{0.0, 0.5, 0.5}, "X"}};
}

GapInfo path_gaps(const std::vector<BandsAtK>& bands, idx n_valence) {
  XGW_REQUIRE(!bands.empty(), "path_gaps: empty band set");
  double vbm = -1e300, cbm = 1e300, direct = 1e300;
  Vec3 vbm_k{}, cbm_k{};
  for (const BandsAtK& b : bands) {
    XGW_REQUIRE(static_cast<idx>(b.energy.size()) > n_valence,
                "path_gaps: need at least one empty band");
    const double ev = b.energy[static_cast<std::size_t>(n_valence - 1)];
    const double ec = b.energy[static_cast<std::size_t>(n_valence)];
    if (ev > vbm) {
      vbm = ev;
      vbm_k = b.k_frac;
    }
    if (ec < cbm) {
      cbm = ec;
      cbm_k = b.k_frac;
    }
    direct = std::min(direct, ec - ev);
  }
  return {cbm - vbm, direct, vbm_k, cbm_k};
}

}  // namespace xgw

#pragma once

// Momentum (velocity) matrix elements <m|p|n> on a plane-wave basis.
//
// At Gamma with a LOCAL mean-field potential, p acts as multiplication by
// G on the coefficients, so <m|p|n> = sum_G c_m^*(G) G c_n(G) exactly (the
// [V, r] commutator vanishes). These elements drive three q->0 limits in
// the GW stack: the chi head (core/chi.h), the dielectric-tensor
// anisotropy, and the optical dipoles of the BSE (d = p / (i w)).

#include <array>

#include "mf/wavefunctions.h"
#include "pw/gvectors.h"

namespace xgw {

class MomentumOperator {
 public:
  MomentumOperator(const GSphere& sphere, const Lattice& lattice);

  /// <m|p|n>, three cartesian components (atomic units).
  std::array<cplx, 3> pair(const Wavefunctions& wf, idx m, idx n) const;

  /// |<m|p|n>|^2 summed over components.
  double pair_norm2(const Wavefunctions& wf, idx m, idx n) const;

 private:
  std::vector<Vec3> gcart_;
};

}  // namespace xgw

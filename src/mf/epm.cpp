#include "mf/epm.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace xgw {

// ---------------------------------------------------------------------------
// FormFactor: Fritsch-Carlson monotone cubic interpolation.
// ---------------------------------------------------------------------------

FormFactor::FormFactor(std::vector<Point> points) : pts_(std::move(points)) {
  XGW_REQUIRE(pts_.size() >= 2, "FormFactor: need at least two control points");
  for (std::size_t i = 1; i < pts_.size(); ++i)
    XGW_REQUIRE(pts_[i].q2 > pts_[i - 1].q2,
                "FormFactor: control points must have increasing q^2");

  const std::size_t n = pts_.size();
  std::vector<double> secants(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i)
    secants[i] = (pts_[i + 1].u - pts_[i].u) / (pts_[i + 1].q2 - pts_[i].q2);

  slopes_.resize(n);
  slopes_[0] = secants[0];
  slopes_[n - 1] = secants[n - 2];
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (secants[i - 1] * secants[i] <= 0.0)
      slopes_[i] = 0.0;
    else
      slopes_[i] = 0.5 * (secants[i - 1] + secants[i]);
  }
  // Fritsch-Carlson limiter keeps the interpolant overshoot-free.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (secants[i] == 0.0) {
      slopes_[i] = slopes_[i + 1] = 0.0;
      continue;
    }
    const double a = slopes_[i] / secants[i];
    const double b = slopes_[i + 1] / secants[i];
    const double s = a * a + b * b;
    if (s > 9.0) {
      const double t = 3.0 / std::sqrt(s);
      slopes_[i] = t * a * secants[i];
      slopes_[i + 1] = t * b * secants[i];
    }
  }
}

double FormFactor::operator()(double q2) const {
  if (q2 <= pts_.front().q2) return pts_.front().u;
  if (q2 >= pts_.back().q2) return pts_.back().u;
  // Locate interval.
  std::size_t lo = 0;
  std::size_t hi = pts_.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (pts_[mid].q2 <= q2)
      lo = mid;
    else
      hi = mid;
  }
  const double h = pts_[hi].q2 - pts_[lo].q2;
  const double t = (q2 - pts_[lo].q2) / h;
  const double t2 = t * t, t3 = t2 * t;
  const double h00 = 2 * t3 - 3 * t2 + 1;
  const double h10 = t3 - 2 * t2 + t;
  const double h01 = -2 * t3 + 3 * t2;
  const double h11 = t3 - t2;
  return h00 * pts_[lo].u + h10 * h * slopes_[lo] + h01 * pts_[hi].u +
         h11 * h * slopes_[hi];
}

// ---------------------------------------------------------------------------
// EpmModel
// ---------------------------------------------------------------------------

EpmModel::EpmModel(Crystal crystal, std::vector<FormFactor> form_factors,
                   std::vector<int> species_electrons, double prim_cell_volume,
                   double default_cutoff)
    : crystal_(std::move(crystal)),
      form_factors_(std::move(form_factors)),
      species_electrons_(std::move(species_electrons)),
      prim_cell_volume_(prim_cell_volume),
      default_cutoff_(default_cutoff) {
  XGW_REQUIRE(static_cast<int>(form_factors_.size()) == crystal_.n_species(),
              "EpmModel: one form factor per species required");
  XGW_REQUIRE(static_cast<int>(species_electrons_.size()) ==
                  crystal_.n_species(),
              "EpmModel: one electron count per species required");
  XGW_REQUIRE(prim_cell_volume_ > 0.0, "EpmModel: bad primitive cell volume");
}

double EpmModel::n_prim_cells() const {
  return crystal_.lattice().cell_volume() / prim_cell_volume_;
}

idx EpmModel::n_electrons() const {
  idx n = 0;
  for (const Atom& a : crystal_.atoms())
    n += species_electrons_[static_cast<std::size_t>(a.species)];
  return n;
}

idx EpmModel::n_valence_bands() const { return (n_electrons() + 1) / 2; }

cplx EpmModel::v_of_g(const IVec3& hkl) const {
  if (hkl == IVec3{0, 0, 0}) return cplx{};
  const double q2 = crystal_.lattice().g_norm2(hkl);
  const double inv_nprim = 1.0 / n_prim_cells();
  cplx v{};
  // Per-species: u_s(q^2) * S_s(G); the structure factor encapsulates the
  // exact crystal-coordinate phases.
  for (int s = 0; s < crystal_.n_species(); ++s) {
    const double u = form_factors_[static_cast<std::size_t>(s)](q2);
    if (u != 0.0) v += u * crystal_.structure_factor(s, hkl);
  }
  return v * inv_nprim;
}

cplx EpmModel::dv_dr(const IVec3& hkl, idx ia, int axis) const {
  XGW_REQUIRE(ia >= 0 && ia < crystal_.n_atoms(), "dv_dr: bad atom index");
  if (hkl == IVec3{0, 0, 0}) return cplx{};
  const Atom& atom = crystal_.atoms()[static_cast<std::size_t>(ia)];
  const double q2 = crystal_.lattice().g_norm2(hkl);
  const double u =
      form_factors_[static_cast<std::size_t>(atom.species)](q2);
  const Vec3 g = crystal_.lattice().g_cart(hkl);
  const double phase = -kTwoPi * (static_cast<double>(hkl[0]) * atom.frac[0] +
                                  static_cast<double>(hkl[1]) * atom.frac[1] +
                                  static_cast<double>(hkl[2]) * atom.frac[2]);
  const cplx e_igt{std::cos(phase), std::sin(phase)};
  // d/dR_alpha e^{-i G . tau} = -i G_alpha e^{-i G . tau}
  return cplx{0.0, -1.0} * g[static_cast<std::size_t>(axis)] * u * e_igt /
         n_prim_cells();
}

namespace {

// Silicon: Cohen-Bergstresser symmetric form factors V3=-0.21, V8=+0.04,
// V11=+0.08 Ry (per PAIR of atoms; per-atom u = V/2), pinned at q^2 in units
// of (2 pi / a)^2 with a = 10.26 Bohr, smoothly interpolated for the
// intermediate q^2 values supercells introduce.
FormFactor silicon_form_factor() {
  const double a = 10.26;
  const double unit = (kTwoPi / a) * (kTwoPi / a);  // (2 pi / a)^2 in Bohr^-2
  const double ry = 0.5;                            // Ry -> Ha
  return FormFactor({{0.0, -0.20 * ry / 2},
                     {3.0 * unit, -0.21 * ry / 2},
                     {8.0 * unit, +0.04 * ry / 2},
                     {11.0 * unit, +0.08 * ry / 2},
                     {16.0 * unit, +0.02 * ry / 2},
                     {20.0 * unit, 0.0}});
}

}  // namespace

EpmModel EpmModel::silicon(idx n_super) {
  const double alat = 10.26;  // Bohr
  Crystal c = Crystal::diamond(alat, n_super, "Si");
  const double prim_vol = alat * alat * alat / 4.0;
  return EpmModel(std::move(c), {silicon_form_factor()}, {4}, prim_vol,
                  /*default_cutoff=*/2.75);
}

EpmModel EpmModel::lih(idx n_super) {
  const double alat = 7.72;  // Bohr (rocksalt LiH)
  Crystal c = Crystal::rocksalt(alat, n_super, "Li", "H");
  const double unit = (kTwoPi / alat) * (kTwoPi / alat);
  // Ionic model: strongly attractive H(-like) site, weak Li site. Tuned to
  // open a wide direct gap (LiH-like insulator).
  FormFactor li({{0.0, -0.020},
                 {3.0 * unit, -0.015},
                 {8.0 * unit, +0.005},
                 {14.0 * unit, 0.0}});
  FormFactor h({{0.0, -0.120},
                {3.0 * unit, -0.060},
                {8.0 * unit, -0.015},
                {14.0 * unit, 0.0}});
  const double prim_vol = alat * alat * alat / 4.0;
  return EpmModel(std::move(c), {li, h}, {1, 1}, prim_vol,
                  /*default_cutoff=*/6.0);
}

EpmModel EpmModel::bn(idx n_super) {
  const double alat = 6.83;  // Bohr (zincblende BN)
  Crystal c = Crystal::zincblende(alat, n_super, "B", "N");
  const double unit = (kTwoPi / alat) * (kTwoPi / alat);
  // Polar covalent model: N site deeper than B, strong antisymmetric
  // component -> wide gap.
  FormFactor b({{0.0, -0.05},
                {3.0 * unit, -0.04},
                {8.0 * unit, +0.04},
                {16.0 * unit, +0.01},
                {24.0 * unit, 0.0}});
  FormFactor n({{0.0, -0.35},
                {3.0 * unit, -0.28},
                {8.0 * unit, -0.08},
                {16.0 * unit, +0.02},
                {24.0 * unit, 0.0}});
  const double prim_vol = alat * alat * alat / 4.0;
  return EpmModel(std::move(c), {b, n}, {3, 5}, prim_vol,
                  /*default_cutoff=*/8.0);
}

EpmModel EpmModel::bn_monolayer(idx n_super, double vacuum) {
  const double a = 4.75;  // Bohr (h-BN in-plane constant ~2.51 A)
  Crystal c = Crystal::hexagonal_monolayer(a, vacuum, n_super, "B", "N");
  const double unit = (kTwoPi / a) * (kTwoPi / a);
  // Asymmetric B/N potential tuned (bench-scanned) to an h-BN-like wide
  // gap (~8 eV for the monolayer with this basis).
  FormFactor b({{0.0, -0.018},
                {1.0 * unit, -0.015},
                {3.0 * unit, +0.009},
                {6.0 * unit, +0.003},
                {10.0 * unit, 0.0}});
  FormFactor n({{0.0, -0.126},
                {1.0 * unit, -0.090},
                {3.0 * unit, -0.030},
                {6.0 * unit, +0.003},
                {10.0 * unit, 0.0}});
  // Per-cell normalization: the "primitive cell" is the monolayer cell
  // itself (vacuum included) — the potential is not refolded from a bulk.
  const double prim_vol =
      Lattice::hexagonal(a, vacuum).cell_volume();
  return EpmModel(std::move(c), {b, n}, {3, 5}, prim_vol,
                  /*default_cutoff=*/5.0);
}

EpmModel EpmModel::with_vacancy(idx ia) const {
  EpmModel out = *this;
  out.crystal_ = crystal_.with_vacancy(ia);
  return out;
}

EpmModel EpmModel::displaced(idx ia, const Vec3& delta_cart) const {
  EpmModel out = *this;
  out.crystal_ = crystal_.displaced(ia, delta_cart);
  return out;
}

}  // namespace xgw

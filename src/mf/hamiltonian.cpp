#include "mf/hamiltonian.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace xgw {

PwHamiltonian::PwHamiltonian(const EpmModel& model, double cutoff)
    : model_(model),
      sphere_(model.crystal().lattice(),
              cutoff > 0.0 ? cutoff : model.default_cutoff()) {
  // Box holding all V(G - G') differences alias-free: 4*hmax + 1 per axis.
  const IVec3 hm = sphere_.max_miller();
  box_ = FftBox{next_fast_size(4 * hm[0] + 1), next_fast_size(4 * hm[1] + 1),
                next_fast_size(4 * hm[2] + 1)};
  fft_ = std::make_unique<Fft3d>(box_);

  // Fill V(G) for all differences |h_i| <= 2*hmax_i on the box.
  v_diff_.assign(static_cast<std::size_t>(box_.size()), cplx{});
  for (idx h = -2 * hm[0]; h <= 2 * hm[0]; ++h)
    for (idx k = -2 * hm[1]; k <= 2 * hm[1]; ++k)
      for (idx l = -2 * hm[2]; l <= 2 * hm[2]; ++l) {
        const IVec3 hkl{h, k, l};
        v_diff_[static_cast<std::size_t>(box_index(box_, hkl))] =
            model_.v_of_g(hkl);
      }

  // V(r) = sum_G V(G) e^{iGr}: unnormalized backward FFT of V(G).
  v_real_ = v_diff_;
  fft_->backward(v_real_.data());
  for (const cplx& v : v_real_) vmax_real_ = std::max(vmax_real_, std::abs(v));
}

ZMatrix PwHamiltonian::dense() const {
  const idx n = n_pw();
  ZMatrix h(n, n);
  for (idx g = 0; g < n; ++g) {
    const IVec3 mg = sphere_.miller(g);
    for (idx gp = 0; gp < n; ++gp) {
      const IVec3 mgp = sphere_.miller(gp);
      const IVec3 diff{mg[0] - mgp[0], mg[1] - mgp[1], mg[2] - mgp[2]};
      h(g, gp) = v_diff_[static_cast<std::size_t>(box_index(box_, diff))];
    }
    h(g, g) += kinetic(g);
  }
  return h;
}

void PwHamiltonian::apply(const cplx* x, cplx* y) const {
  thread_local std::vector<cplx> box_data;
  box_data.assign(static_cast<std::size_t>(box_.size()), cplx{});

  scatter_to_box(sphere_, x, box_, box_data.data());
  fft_->backward(box_data.data());  // psi(r), unnormalized convention
  for (idx i = 0; i < box_.size(); ++i)
    box_data[static_cast<std::size_t>(i)] *=
        v_real_[static_cast<std::size_t>(i)];
  fft_->forward(box_data.data());  // N_box * (V psi)(G)
  const double inv_nbox = 1.0 / static_cast<double>(box_.size());
  gather_from_box(sphere_, box_, box_data.data(), y);
  for (idx ig = 0; ig < n_pw(); ++ig) {
    y[ig] *= inv_nbox;
    y[ig] += kinetic(ig) * x[ig];
  }
}

void PwHamiltonian::apply_block(const ZMatrix& x, ZMatrix& y) const {
  XGW_REQUIRE(x.rows() == n_pw() && y.rows() == n_pw() && x.cols() == y.cols(),
              "apply_block: shape mismatch");
  const idx nb = x.cols();
  std::vector<cplx> xin(static_cast<std::size_t>(n_pw()));
  std::vector<cplx> yout(static_cast<std::size_t>(n_pw()));
  for (idx j = 0; j < nb; ++j) {
    for (idx i = 0; i < n_pw(); ++i) xin[static_cast<std::size_t>(i)] = x(i, j);
    apply(xin.data(), yout.data());
    for (idx i = 0; i < n_pw(); ++i) y(i, j) = yout[static_cast<std::size_t>(i)];
  }
}

double PwHamiltonian::spectral_upper_bound() const {
  double kmax = 0.0;
  for (idx ig = 0; ig < n_pw(); ++ig) kmax = std::max(kmax, kinetic(ig));
  return kmax + vmax_real_;
}

double PwHamiltonian::spectral_lower_bound() const { return -vmax_real_; }

}  // namespace xgw

#include "mf/sternheimer.h"

#include <cmath>

#include "common/error.h"

namespace xgw {

std::vector<cplx> sternheimer_solve(const PwHamiltonian& h,
                                    const Wavefunctions& wf, double e0,
                                    std::vector<cplx> rhs,
                                    const std::vector<idx>& project_bands,
                                    const SternheimerOptions& opt) {
  const idx ng = h.n_pw();
  XGW_REQUIRE(static_cast<idx>(rhs.size()) == ng,
              "sternheimer_solve: rhs size mismatch");
  XGW_REQUIRE(wf.n_pw() == ng, "sternheimer_solve: basis mismatch");

  auto project = [&](std::vector<cplx>& x) {
    for (idx m : project_bands) {
      const cplx* psim = wf.coeff.row(m);
      cplx dot{};
      for (idx g = 0; g < ng; ++g)
        dot += std::conj(psim[g]) * x[static_cast<std::size_t>(g)];
      for (idx g = 0; g < ng; ++g)
        x[static_cast<std::size_t>(g)] -= dot * psim[g];
    }
  };

  std::vector<cplx>& b = rhs;
  project(b);

  // A x = b with A = P (H - e0) P, via CGNR: A^H A x = A^H b.
  auto apply_a = [&](const std::vector<cplx>& x, std::vector<cplx>& y) {
    h.apply(x.data(), y.data());
    for (idx g = 0; g < ng; ++g)
      y[static_cast<std::size_t>(g)] -= e0 * x[static_cast<std::size_t>(g)];
    project(y);
  };

  std::vector<cplx> x(static_cast<std::size_t>(ng), cplx{});
  std::vector<cplx> r(b.size()), z(b.size()), p(b.size()), ap(b.size());

  r = b;
  apply_a(r, z);
  p = z;
  double rz = 0.0;
  for (const cplx& v : z) rz += std::norm(v);

  double bnorm2 = 0.0;
  for (const cplx& v : b) bnorm2 += std::norm(v);
  if (bnorm2 == 0.0) return x;
  const double bnorm = std::sqrt(bnorm2);

  for (idx it = 0; it < opt.max_iter; ++it) {
    apply_a(p, ap);
    double ap2 = 0.0;
    for (const cplx& v : ap) ap2 += std::norm(v);
    if (ap2 == 0.0) break;
    const double alpha = rz / ap2;
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    double rnorm = 0.0;
    for (const cplx& v : r) rnorm += std::norm(v);
    if (std::sqrt(rnorm) < opt.tol * bnorm) break;

    apply_a(r, z);
    double rz_new = 0.0;
    for (const cplx& v : z) rz_new += std::norm(v);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = z[i] + beta * p[i];
  }
  project(x);
  return x;
}

}  // namespace xgw

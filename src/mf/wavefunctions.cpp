#include "mf/wavefunctions.h"

#include <cmath>

#include "common/error.h"

namespace xgw {

Wavefunctions Wavefunctions::truncated(idx nb) const {
  XGW_REQUIRE(nb >= 1 && nb <= n_bands(), "truncated: bad band count");
  Wavefunctions out;
  out.coeff = ZMatrix(nb, n_pw());
  for (idx n = 0; n < nb; ++n)
    for (idx ig = 0; ig < n_pw(); ++ig) out.coeff(n, ig) = coeff(n, ig);
  out.energy.assign(energy.begin(), energy.begin() + nb);
  out.n_valence = std::min(n_valence, nb);
  return out;
}

double Wavefunctions::orthonormality_error() const {
  double worst = 0.0;
  for (idx m = 0; m < n_bands(); ++m) {
    for (idx n = m; n < n_bands(); ++n) {
      cplx dot{};
      const cplx* pm = coeff.row(m);
      const cplx* pn = coeff.row(n);
      for (idx ig = 0; ig < n_pw(); ++ig) dot += std::conj(pm[ig]) * pn[ig];
      const cplx expect = (m == n) ? cplx{1.0, 0.0} : cplx{};
      worst = std::max(worst, std::abs(dot - expect));
    }
  }
  return worst;
}

}  // namespace xgw

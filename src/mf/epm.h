#pragma once

// Empirical pseudopotential models (EPM) — the mean-field substrate.
//
// The paper's GW workflow starts from DFT wavefunctions produced by Quantum
// ESPRESSO. That substrate is replaced here by a local empirical
// pseudopotential plane-wave Hamiltonian H = -1/2 nabla^2 + V(r) with
// V(G) = (1/N_prim) sum_a u_s(|G|) e^{-i G . tau_a}.
// For silicon the per-atom form factor u_s interpolates the classic
// Cohen-Bergstresser symmetric form factors, which reproduce a realistic
// silicon band structure; LiH- and BN-like two-species models provide the
// polar/wide-gap analogues of the paper's other workloads. The substitution
// preserves what GW consumes: a set {psi_n, E_n} of orthonormal plane-wave
// eigenstates with semiconductor gaps, plus analytic dV/dR for DFPT/GWPT.

#include <functional>
#include <vector>

#include "pw/crystal.h"

namespace xgw {

/// Smooth per-species form factor u(q^2), q^2 in 1/Bohr^2, value in Hartree.
/// Monotone-cubic interpolation through control points, zero beyond the
/// last point (pseudopotentials decay at large q).
class FormFactor {
 public:
  struct Point {
    double q2;  ///< |G|^2 in 1/Bohr^2
    double u;   ///< form factor in Hartree
  };

  explicit FormFactor(std::vector<Point> points);

  double operator()(double q2) const;

 private:
  std::vector<Point> pts_;
  std::vector<double> slopes_;  // Fritsch-Carlson tangents
};

/// Pseudopotential model: crystal + per-species form factors.
class EpmModel {
 public:
  /// `species_electrons[s]` is the number of valence electrons atom species
  /// s contributes (Si: 4, Li: 1, H: 1, B: 3, N: 5).
  EpmModel(Crystal crystal, std::vector<FormFactor> form_factors,
           std::vector<int> species_electrons, double prim_cell_volume,
           double default_cutoff);

  const Crystal& crystal() const { return crystal_; }

  /// Local potential Fourier component V(G) for a Miller triple.
  /// The G = 0 component is fixed to zero (constant energy shift).
  cplx v_of_g(const IVec3& hkl) const;

  /// dV(G)/dR_{ia,axis}: analytic derivative with respect to the cartesian
  /// displacement of atom `ia` — the DFPT perturbation used by GWPT.
  cplx dv_dr(const IVec3& hkl, idx ia, int axis) const;

  /// Number of primitive cells this supercell contains (volume ratio).
  double n_prim_cells() const;

  /// Total valence electrons in the cell.
  idx n_electrons() const;

  /// Number of occupied (valence) bands: electrons / 2 (spin-degenerate,
  /// closed-shell; odd counts round up and the system is flagged metallic
  /// by callers that care).
  idx n_valence_bands() const;

  /// --- Predefined materials -------------------------------------------
  /// Cohen-Bergstresser-like silicon, diamond supercell n x n x n
  /// (2 n^3 atoms), optionally with vacancies to model defect systems.
  static EpmModel silicon(idx n_super = 1);

  /// LiH-like rocksalt model (2 n^3 atoms), ionic wide-gap insulator.
  static EpmModel lih(idx n_super = 1);

  /// BN-like zincblende model (2 n^3 atoms), polar wide-gap semiconductor.
  static EpmModel bn(idx n_super = 1);

  /// h-BN-like monolayer (2 n^2 atoms) with `vacuum` Bohr of empty space
  /// along the third axis — the layered-system workload class (the paper's
  /// BN867 moire bilayer has a 1.5 nm vacuum layer); pair with the slab
  /// Coulomb truncation.
  static EpmModel bn_monolayer(idx n_super = 1, double vacuum = 16.0);

  /// Copy of this model with atom `ia` removed (vacancy defect). Electron
  /// count is reduced by the species' per-atom contribution.
  EpmModel with_vacancy(idx ia) const;

  /// Copy with atom `ia` displaced by `delta_cart` (frozen-phonon geometry).
  EpmModel displaced(idx ia, const Vec3& delta_cart) const;

  /// Suggested wavefunction cutoff (Hartree) for this material.
  double default_cutoff() const { return default_cutoff_; }

 private:
  Crystal crystal_;
  std::vector<FormFactor> form_factors_;
  std::vector<int> species_electrons_;
  double prim_cell_volume_;
  double default_cutoff_;
};

}  // namespace xgw

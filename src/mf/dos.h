#pragma once

// Density of states and joint density of states from a band set —
// broadened histograms used for quick diagnostics of the mean field and as
// the independent-particle baseline the optical spectra refine.

#include <vector>

#include "mf/wavefunctions.h"

namespace xgw {

struct DosCurve {
  std::vector<double> energy;   ///< grid (Ha)
  std::vector<double> value;    ///< states / Ha (spin factor 2 included)

  /// Trapezoidal integral over the window.
  double integral() const;
};

/// Gaussian-broadened DOS: g(E) = 2 sum_n exp(-(E - E_n)^2 / 2 s^2) / (s sqrt(2 pi)).
DosCurve density_of_states(const Wavefunctions& wf, double sigma, idx n_grid,
                           double margin = 0.1);

/// Joint DOS over (v, c) transitions: J(w) = 2 sum_vc delta_s(w - (E_c - E_v));
/// the independent-particle absorption skeleton.
DosCurve joint_density_of_states(const Wavefunctions& wf, double sigma,
                                 idx n_grid, double w_max);

}  // namespace xgw

#pragma once

// Plane-wave Hamiltonian H = -1/2 nabla^2 + V_EPM for Gamma-point supercell
// calculations (all the paper's workloads are Gamma-only supercells).
//
// Two application paths:
//  * dense()  — explicit N_G^psi x N_G^psi matrix for direct diagonalization.
//  * apply()  — matrix-free H|x> using FFTs (kinetic in G space, potential in
//    real space), the workhorse for the block-Davidson solver and the
//    Chebyshev-Jackson pseudobands constructor (Sec. 5.3), which both only
//    need matrix-vector products.
// The FFT box is sized 4*hmax+1 so the circular convolution reproduces the
// dense V(G - G') exactly (no aliasing); tests assert dense/apply agreement
// to machine precision.

#include <memory>
#include <vector>

#include "fft/fft.h"
#include "mf/epm.h"
#include "pw/gvectors.h"

namespace xgw {

class PwHamiltonian {
 public:
  /// Builds the basis sphere at `cutoff` (Hartree; <= 0 uses the model's
  /// default) and caches V on the FFT box.
  explicit PwHamiltonian(const EpmModel& model, double cutoff = -1.0);

  const EpmModel& model() const { return model_; }
  const GSphere& sphere() const { return sphere_; }
  idx n_pw() const { return sphere_.size(); }
  double cutoff() const { return sphere_.cutoff(); }

  /// Kinetic energy |G|^2 / 2 of basis vector ig (Hartree).
  double kinetic(idx ig) const { return 0.5 * sphere_.norm2(ig); }

  /// Full dense Hamiltonian (Hermitian), for direct diagonalization.
  ZMatrix dense() const;

  /// y = H x, matrix-free via FFT. x, y are length-n_pw coefficient arrays.
  void apply(const cplx* x, cplx* y) const;

  /// Y(:, j) = H X(:, j) for all columns (bands stored as columns).
  void apply_block(const ZMatrix& x, ZMatrix& y) const;

  /// Upper bound on the spectrum (max kinetic + max|V(r)|), used to scale
  /// Chebyshev filters.
  double spectral_upper_bound() const;
  /// Lower bound (min diagonal - max|V| margin).
  double spectral_lower_bound() const;

 private:
  EpmModel model_;
  GSphere sphere_;
  FftBox box_;
  std::unique_ptr<Fft3d> fft_;
  std::vector<cplx> v_real_;        // V(r) on the box
  std::vector<cplx> v_diff_;        // V(G) on the box (difference lookup)
  double vmax_real_ = 0.0;
};

}  // namespace xgw

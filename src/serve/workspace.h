#pragma once

// In-batch working set of the serving layer: the decoded sub-results that
// producer tasks hand to consumer tasks within ONE batch submit (the CAS
// holds the durable copies; the workspace holds the live ones).
//
// Matrices ride a mem::SpillPool, so a batch whose shared chi/eps matrices
// exceed the resident budget pages them to disk LRU-style instead of
// growing without bound — the "eviction via the SpillPool machinery" half
// of the serving layer's memory story (the CAS disk budget is the other).
// SpillPool itself is not thread-safe, so every operation here is
// serialized on one mutex and get_matrix returns a COPY (pool references
// die at the next pool operation).

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "core/sigma.h"
#include "la/matrix.h"
#include "mem/spill.h"
#include "mf/wavefunctions.h"

namespace xgw::serve {

class BatchWorkspace {
 public:
  /// `resident_budget_bytes` bounds the matrices kept in memory (0 =
  /// unlimited); spill pages live under `dir`.
  BatchWorkspace(const std::string& dir, std::size_t resident_budget_bytes);

  void put_matrix(const std::string& key, ZMatrix m);
  bool has_matrix(const std::string& key) const;
  std::optional<ZMatrix> get_matrix(const std::string& key);

  void put_wavefunctions(const std::string& key, Wavefunctions wf);
  std::shared_ptr<const Wavefunctions> get_wavefunctions(
      const std::string& key) const;

  void put_qp(const std::string& key, const QpResult& r);
  std::optional<QpResult> get_qp(const std::string& key) const;

  std::uint64_t evictions() const;

 private:
  mutable std::mutex mu_;
  mem::SpillPool pool_;
  std::set<std::string> matrix_keys_;
  std::map<std::string, std::shared_ptr<const Wavefunctions>> wfn_;
  std::map<std::string, QpResult> qp_;
};

}  // namespace xgw::serve

#include "serve/workspace.h"

#include <limits>

namespace xgw::serve {

BatchWorkspace::BatchWorkspace(const std::string& dir,
                               std::size_t resident_budget_bytes)
    : pool_(dir,
            resident_budget_bytes == 0
                ? std::numeric_limits<std::size_t>::max()
                : resident_budget_bytes,
            "ws_") {}

void BatchWorkspace::put_matrix(const std::string& key, ZMatrix m) {
  std::lock_guard<std::mutex> lk(mu_);
  pool_.put(key, std::move(m));
  matrix_keys_.insert(key);
}

bool BatchWorkspace::has_matrix(const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  return matrix_keys_.count(key) != 0;
}

std::optional<ZMatrix> BatchWorkspace::get_matrix(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  if (matrix_keys_.count(key) == 0) return std::nullopt;
  return pool_.get(key);  // copies out: pool references are not stable
}

void BatchWorkspace::put_wavefunctions(const std::string& key,
                                       Wavefunctions wf) {
  std::lock_guard<std::mutex> lk(mu_);
  wfn_[key] = std::make_shared<const Wavefunctions>(std::move(wf));
}

std::shared_ptr<const Wavefunctions> BatchWorkspace::get_wavefunctions(
    const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = wfn_.find(key);
  return it == wfn_.end() ? nullptr : it->second;
}

void BatchWorkspace::put_qp(const std::string& key, const QpResult& r) {
  std::lock_guard<std::mutex> lk(mu_);
  qp_[key] = r;
}

std::optional<QpResult> BatchWorkspace::get_qp(const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = qp_.find(key);
  if (it == qp_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t BatchWorkspace::evictions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pool_.evictions();
}

}  // namespace xgw::serve

#pragma once

// Job-spec canonicalization for the serving layer: turns an xgw_run input
// file into STAGE-SCOPED cache keys, one per sub-result of the GW pipeline
//
//   mf   — mean-field band set {psi_n, E_n}
//   mtx  — MTXEL block M_{l n}(G) for one external band l
//   chi  — static chi(q=0) (NV-Block CHI_SUM)
//   eps  — eps^{-1}(0)
//   epsf — eps^{-1}(i omega_k), one per imaginary-axis frequency node
//   sig  — Sigma_ll + QP solve for one band l
//   chit — chi^0(i tau_j), one per minimax imaginary-time node
//   wtau — W^c(i tau) store of the space-time route (all tau nodes)
//   sigst— space-time Sigma_ll + Pade QP solve for one band l
//
// A key is `<stage>-<fnv1a64 hex>` of a canonical text block: fixed schema
// header, then only the fields that stage's result depends on, sorted by
// field name, defaults materialized, floats printed as shortest-round-trip
// %.17g. Runtime knobs (checkpoint, trace, sched_workers, spill/retry
// modes, memory budget) are deliberately EXCLUDED: they never change
// result bytes — the budget enters only through the resolved nv_block,
// which DOES change bits (NV-Block summation order) and is therefore part
// of every chi-and-downstream key.
//
// The canonical text and its hash are pinned by a golden test
// (test_serve CacheKeyGolden): accidental canonicalization changes would
// silently invalidate every store, so they must show up as a test diff.

#include <string>
#include <vector>

#include "cli/input.h"
#include "common/types.h"

namespace xgw::serve {

enum class Stage : int {
  kMf = 0,
  kMtxel,
  kChi,
  kEps,
  kEpsFreq,
  kSigmaBand,
  // Space-time (minimax i tau / i omega) route. Key-able today so the
  // canonical form is frozen by the golden test; the batch executor does
  // not run this route yet (resolve_spec rejects such specs, see below).
  kChiTau,
  kWTau,
  kSigmaStBand,
};

const char* stage_prefix(Stage s);

/// Shortest-round-trip decimal text of a double ("%.17g" would pad; "%g"
/// would lose bits): the shortest precision in [1, 17] that parses back to
/// exactly `v`. Canonical key material only — never for physics.
std::string canon_double(double v);

/// Problem dimensions the budget planner needs, derived WITHOUT
/// diagonalizing the mean field (keys must be cheap to compute).
struct SpecDims {
  idx nv = 0;  ///< valence bands of the material
  idx nc = 0;  ///< conduction bands of the (uncompressed) basis
  idx ng = 0;  ///< chi/eps sphere size
};

/// The serve-normalized view of one job spec: every field a sub-result can
/// depend on, resolved to its final value (defaults applied, bands
/// defaulted, nv_block solved under the job's byte budget).
struct ResolvedSpec {
  std::string job;  ///< "sigma" | "epsilon"
  // mean-field identity
  std::string material;
  idx supercell = 1;
  bool has_vacancy = false;
  idx vacancy = 0;
  double vacuum = 16.0;
  double psi_cutoff = -1.0;
  idx n_bands = -1;
  bool pseudobands = false;
  idx pseudobands_nxi = 3;
  // screening identity
  double eps_cutoff = -1.0;
  double eta = 1e-3;
  idx nv_block = 8;  ///< RESOLVED block size (see resolve_spec)
  std::string coulomb = "spherical_average";
  // sigma identity
  std::string sigma_method = "gpp";  ///< "gpp" | "space_time"
  idx n_tau = 14;  ///< minimax grid order (space-time stages only)
  idx n_e_points = 3;
  double e_step = 0.02;
  std::vector<idx> bands;  ///< resolved sigma bands (default {nv-1, nv})
  // epsilon identity
  idx n_freq = 0;             ///< 0 = static only
  std::vector<double> freqs;  ///< imaginary-axis nodes (when n_freq > 0)
};

/// Normalizes an input file into a ResolvedSpec. Throws kValidation for
/// jobs the serving layer cannot key (anything but sigma/epsilon, or specs
/// whose identity lives outside the text: input_wfn) and for side-output
/// keys (output_wfn/output_epsmat) that a cache hit could not produce.
/// `sigma_method space_time` is also rejected: the batch executor runs the
/// GPP route, so accepting such a spec would cache GPP numbers under a
/// space-time job's keys (cache poisoning). Run those through xgw_run.
///
/// nv_block resolution is a PURE function of the spec: when the job
/// carries a byte budget, the planner is solved with fixed_bytes = 0 and
/// threads = 1 over `dims`, so identical manifests re-hash identically on
/// any host. (This is serve's own planning point — the single-job driver
/// plans against live tracker state instead.) `default_budget_mb` applies
/// when the spec names no budget of its own.
ResolvedSpec resolve_spec(const InputFile& in, const SpecDims& dims,
                          double default_budget_mb = 0.0);

/// Canonical text block a stage key hashes. `band` indexes per-band stages
/// (kMtxel, kSigmaBand); `freq_index` indexes kEpsFreq.
std::string canonical_stage_spec(const ResolvedSpec& s, Stage stage,
                                 idx band = -1, idx freq_index = -1);

/// `<stage>-<fnv1a hex>` — the CasStore key (filesystem-safe).
std::string cache_key(const ResolvedSpec& s, Stage stage, idx band = -1,
                      idx freq_index = -1);

/// One manifest entry: the job's display name (file stem) and parsed spec.
struct JobSpec {
  std::string name;
  std::string path;
  InputFile input;
};

/// Loads one job file (validated against the driver's known keys).
JobSpec load_job(const std::string& path);

/// Loads a manifest (one .inp path per line, '#' comments, paths relative
/// to the manifest file) into parsed job specs.
std::vector<JobSpec> load_manifest(const std::string& path);

}  // namespace xgw::serve

#include "serve/batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <span>

#include "cli/driver.h"
#include "common/error.h"
#include "common/types.h"
#include "mem/planner.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "pseudobands/pseudobands.h"
#include "sched/executor.h"
#include "sched/taskgraph.h"
#include "serve/workspace.h"

namespace xgw::serve {

namespace {

using Clock = std::chrono::steady_clock;

struct JobState {
  JobSpec spec;
  ResolvedSpec rs;
  std::unique_ptr<GwCalculation> gw;
  JobOutcome out;

  std::string mf_key, chi_key, eps_key;
  std::vector<std::string> sig_keys;   // sigma: one per band slot
  std::vector<std::string> mtx_keys;   // sigma: one per band slot
  std::vector<std::string> epsf_keys;  // epsilon: one per frequency

  bool eps_needed = false;
  std::vector<std::size_t> owned_slots;    // this job computes these bands
  std::vector<std::size_t> cached_slots;   // found in the CAS at submit
  std::vector<std::size_t> foreign_slots;  // another job in the batch owns
  std::vector<std::size_t> owned_freqs;
  std::vector<std::size_t> cached_freqs;
  std::vector<std::size_t> foreign_freqs;

  sched::TaskId work_task = -1;
  Clock::time_point done_at{};
};

struct BuildCounters {
  std::atomic<std::uint64_t> mf{0}, mtxel{0}, chi{0}, eps{0}, epsf{0}, sig{0};
};

void count_build(const char* stage) {
  obs::metrics().counter(std::string("serve/build/") + stage).add(1);
}

/// Everything the node bodies share. Helpers follow ensure-semantics
/// (workspace -> CAS -> compute) so a probe gone stale mid-batch — disk
/// eviction, corrupt entry dropped at read — degrades to recompute.
struct BatchCtx {
  const ServeOptions& opt;
  CasStore& cas;
  BatchWorkspace& ws;
  BuildCounters& builds;

  void ensure_wavefunctions(JobState& st) const {
    if (st.gw->has_wavefunctions()) return;
    if (auto wf = ws.get_wavefunctions(st.mf_key)) {
      st.gw->set_wavefunctions(*wf);
      return;
    }
    if (opt.use_cache) {
      if (auto wf = cas.get_wavefunctions(st.mf_key)) {
        ws.put_wavefunctions(st.mf_key, *wf);
        st.gw->set_wavefunctions(std::move(*wf));
        return;
      }
    }
    if (st.rs.pseudobands) {
      PseudobandsOptions po;
      po.n_xi = st.rs.pseudobands_nxi;
      st.gw->set_wavefunctions(build_pseudobands(st.gw->wavefunctions(), po));
    } else {
      st.gw->wavefunctions();
    }
    ++builds.mf;
    count_build("mf");
    if (opt.use_cache)
      cas.put_wavefunctions(st.mf_key, st.gw->wavefunctions());
    ws.put_wavefunctions(st.mf_key, st.gw->wavefunctions());
  }

  void ensure_chi(JobState& st) const {
    if (ws.has_matrix(st.chi_key)) return;
    if (opt.use_cache) {
      if (auto m = cas.get_matrix(st.chi_key)) {
        ws.put_matrix(st.chi_key, std::move(*m));
        return;
      }
    }
    ensure_wavefunctions(st);
    const ZMatrix& chi = st.gw->chi0();
    ++builds.chi;
    count_build("chi");
    if (opt.use_cache) cas.put_matrix(st.chi_key, chi);
    ws.put_matrix(st.chi_key, chi);
  }

  void ensure_eps(JobState& st) const {
    if (ws.has_matrix(st.eps_key)) return;
    if (opt.use_cache) {
      if (auto m = cas.get_matrix(st.eps_key)) {
        ws.put_matrix(st.eps_key, std::move(*m));
        return;
      }
    }
    if (!st.gw->has_chi0()) {
      if (auto chi = ws.get_matrix(st.chi_key)) {
        st.gw->set_chi0(std::move(*chi));
      } else {
        ensure_chi(st);
        if (!st.gw->has_chi0())
          if (auto chi2 = ws.get_matrix(st.chi_key))
            st.gw->set_chi0(std::move(*chi2));
      }
    }
    const ZMatrix& eps = st.gw->epsinv0();
    ++builds.eps;
    count_build("eps");
    if (opt.use_cache) cas.put_matrix(st.eps_key, eps);
    ws.put_matrix(st.eps_key, eps);
  }
};

std::string fmt_ev(double hartree) {
  return canon_double(hartree * kHartreeToEv);
}

}  // namespace

BatchReport run_batch(const std::vector<JobSpec>& jobs,
                      const ServeOptions& opt, std::ostream& os) {
  XGW_REQUIRE(!jobs.empty(), "run_batch: no jobs");
  const Clock::time_point t0 = Clock::now();

  CasStore cas(opt.store_dir,
               opt.store_budget_mb > 0.0 ? mem::mb(opt.store_budget_mb) : 0);
  cas.set_verify(opt.verify);
  BatchWorkspace ws(opt.store_dir + "/ws",
                    opt.resident_mb > 0.0 ? mem::mb(opt.resident_mb) : 0);
  BuildCounters builds;
  BatchCtx ctx{opt, cas, ws, builds};

  const bool observe = !opt.report_path.empty();
  if (observe) obs::recorder().enable(obs::detail_level::kStage);

  // --- plan: probe the store, claim unique nodes, build the union DAG ----
  sched::TaskGraph graph;
  std::vector<std::unique_ptr<JobState>> states;
  std::map<std::string, sched::TaskId> node_task;  // mf/chi/eps ensure nodes
  std::map<std::string, std::size_t> slot_owner;   // sig/epsf key -> job
  std::map<std::string, int> key_refs;             // dependency-closure refs
  std::mutex err_mu;
  std::vector<std::string> warnings;

  auto guard = [&](JobState* st, std::function<void()> body) {
    // Shared ensure nodes must never take the whole batch down: a failure
    // is recorded and the consumers' inline fallbacks take over (or fail
    // per-job). st == nullptr marks a shared node.
    return [&, st, body = std::move(body)] {
      try {
        body();
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (st) {
          st->out.rc = 1;
          if (st->out.error.empty()) st->out.error = e.what();
        } else {
          warnings.emplace_back(e.what());
        }
      }
      if (st) st->done_at = Clock::now();
    };
  };

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    auto stp = std::make_unique<JobState>();
    JobState& st = *stp;
    st.spec = jobs[j];
    st.out.name = st.spec.name;
    try {
      const EpmModel model = build_material_from_input(st.spec.input);
      const GwParameters params = build_params_from_input(st.spec.input);
      st.gw = std::make_unique<GwCalculation>(model, params);
      SpecDims dims;
      dims.nv = model.n_valence_bands();
      dims.ng = st.gw->n_g();
      const idx total = params.n_bands > 0
                            ? std::min(params.n_bands, st.gw->n_g_psi())
                            : st.gw->n_g_psi();
      dims.nc = total - dims.nv;
      st.rs = resolve_spec(st.spec.input, dims, opt.memory_budget_mb);
      st.gw->set_nv_block(st.rs.nv_block);
      st.out.job = st.rs.job;
    } catch (const Error& e) {
      st.out.rc = 1;
      st.out.error = e.what();
      states.push_back(std::move(stp));
      continue;
    }

    st.mf_key = cache_key(st.rs, Stage::kMf);
    st.chi_key = cache_key(st.rs, Stage::kChi);
    st.eps_key = cache_key(st.rs, Stage::kEps);
    ++key_refs[st.mf_key];
    ++key_refs[st.chi_key];
    ++key_refs[st.eps_key];

    bool sig_compute = false, epsf_compute = false;
    if (st.rs.job == "sigma") {
      st.out.qp.resize(st.rs.bands.size());
      for (std::size_t i = 0; i < st.rs.bands.size(); ++i) {
        const idx b = st.rs.bands[i];
        st.sig_keys.push_back(cache_key(st.rs, Stage::kSigmaBand, b));
        st.mtx_keys.push_back(cache_key(st.rs, Stage::kMtxel, b));
        ++key_refs[st.sig_keys.back()];
        auto owner = slot_owner.find(st.sig_keys.back());
        if (owner != slot_owner.end() && owner->second != j) {
          st.foreign_slots.push_back(i);
        } else if (opt.use_cache && cas.probe(st.sig_keys.back())) {
          st.cached_slots.push_back(i);
        } else {
          st.owned_slots.push_back(i);
          slot_owner[st.sig_keys.back()] = j;
        }
      }
      sig_compute = !st.owned_slots.empty();
      st.eps_needed = sig_compute;
    } else {
      st.eps_needed = true;
      for (std::size_t k = 0; k < st.rs.freqs.size(); ++k) {
        st.epsf_keys.push_back(
            cache_key(st.rs, Stage::kEpsFreq, -1, static_cast<idx>(k)));
        ++key_refs[st.epsf_keys.back()];
        auto owner = slot_owner.find(st.epsf_keys.back());
        if (owner != slot_owner.end() && owner->second != j) {
          st.foreign_freqs.push_back(k);
        } else if (opt.use_cache && cas.probe(st.epsf_keys.back())) {
          st.cached_freqs.push_back(k);
        } else {
          st.owned_freqs.push_back(k);
          slot_owner[st.epsf_keys.back()] = j;
        }
      }
      epsf_compute = !st.owned_freqs.empty();
    }

    const bool eps_missed =
        st.eps_needed && !(opt.use_cache && cas.probe(st.eps_key));
    const bool chi_missed =
        eps_missed && !(opt.use_cache && cas.probe(st.chi_key));
    const bool needs_mf = sig_compute || epsf_compute || chi_missed;
    st.out.probe_hits = static_cast<idx>(st.cached_slots.size() +
                                         st.cached_freqs.size()) +
                        (st.eps_needed && !eps_missed ? 1 : 0) +
                        (eps_missed && !chi_missed ? 1 : 0);
    st.out.probe_misses =
        static_cast<idx>(st.owned_slots.size() + st.owned_freqs.size()) +
        (eps_missed ? 1 : 0) + (chi_missed ? 1 : 0);

    // Unique ensure nodes, claimed by the first job that needs them.
    JobState* p = &st;
    std::vector<sched::TaskId> deps;
    sched::TaskId mf_task = -1, chi_task = -1, eps_task = -1;
    if (needs_mf) {
      auto it = node_task.find(st.mf_key);
      if (it == node_task.end()) {
        mf_task = graph.add_task(
            "mf:" + st.mf_key, guard(nullptr, [&ctx, p] {
              ctx.ensure_wavefunctions(*p);
            }),
            "serve.mf");
        node_task[st.mf_key] = mf_task;
      } else {
        mf_task = it->second;
      }
      deps.push_back(mf_task);
    }
    if (st.eps_needed) {
      if (eps_missed) {
        auto cit = node_task.find(st.chi_key);
        if (cit == node_task.end()) {
          chi_task = graph.add_task(
              "chi:" + st.chi_key,
              guard(nullptr, [&ctx, p] { ctx.ensure_chi(*p); }), "serve.chi");
          node_task[st.chi_key] = chi_task;
        } else {
          chi_task = cit->second;
        }
        if (chi_missed && mf_task >= 0) graph.add_edge(mf_task, chi_task);
      }
      auto eit = node_task.find(st.eps_key);
      if (eit == node_task.end()) {
        eps_task = graph.add_task(
            "eps:" + st.eps_key,
            guard(nullptr, [&ctx, p] { ctx.ensure_eps(*p); }), "serve.eps");
        node_task[st.eps_key] = eps_task;
      } else {
        eps_task = eit->second;
      }
      if (chi_task >= 0) graph.add_edge(chi_task, eps_task);
      // Order mf before eps even when chi was a store hit: both node
      // bodies may touch the producer's GwCalculation, and
      // set_wavefunctions invalidates downstream stages.
      if (mf_task >= 0) graph.add_edge(mf_task, eps_task);
      deps.push_back(eps_task);
    }
    for (std::size_t i : st.foreign_slots)
      deps.push_back(states[slot_owner.at(st.sig_keys[i])]->work_task);
    for (std::size_t k : st.foreign_freqs)
      deps.push_back(states[slot_owner.at(st.epsf_keys[k])]->work_task);

    // The per-job work node: collect cached rows, compute owned ones (one
    // sigma_diag call — internally band-parallel), read foreign ones from
    // the workspace.
    st.work_task = graph.add_task(
        "job:" + st.out.name, guard(p, [&ctx, p] {
          JobState& s = *p;
          const ServeOptions& o = ctx.opt;
          if (s.rs.job == "sigma") {
            std::vector<std::size_t> leftover = s.owned_slots;
            for (std::size_t i : s.foreign_slots) {
              if (auto r = ctx.ws.get_qp(s.sig_keys[i]))
                s.out.qp[i] = *r;
              else
                leftover.push_back(i);  // producer failed: compute here
            }
            for (std::size_t i : s.cached_slots) {
              std::optional<QpResult> r;
              if (o.use_cache) r = ctx.cas.get_qp(s.sig_keys[i]);
              if (r)
                s.out.qp[i] = *r;
              else
                leftover.push_back(i);  // evicted/corrupt since the probe
            }
            if (!leftover.empty()) {
              std::sort(leftover.begin(), leftover.end());
              ctx.ensure_wavefunctions(s);
              if (!s.gw->has_epsinv0()) {
                if (auto e = ctx.ws.get_matrix(s.eps_key)) {
                  s.gw->set_epsinv0(std::move(*e));
                } else {
                  ctx.ensure_eps(s);
                  if (!s.gw->has_epsinv0())
                    if (auto e2 = ctx.ws.get_matrix(s.eps_key))
                      s.gw->set_epsinv0(std::move(*e2));
                }
              }
              std::map<idx, std::string> mtx_by_band;
              for (std::size_t i = 0; i < s.rs.bands.size(); ++i)
                mtx_by_band[s.rs.bands[i]] = s.mtx_keys[i];
              s.gw->set_mtxel_cache(
                  [&ctx, &mtx_by_band](idx l) -> std::optional<ZMatrix> {
                    auto it = mtx_by_band.find(l);
                    if (it == mtx_by_band.end() || !ctx.opt.use_cache)
                      return std::nullopt;
                    return ctx.cas.get_matrix(it->second);
                  },
                  [&ctx, &mtx_by_band](idx l, const ZMatrix& m) {
                    auto it = mtx_by_band.find(l);
                    if (it == mtx_by_band.end()) return;
                    ++ctx.builds.mtxel;
                    count_build("mtxel");
                    if (ctx.opt.use_cache) ctx.cas.put_matrix(it->second, m);
                  });
              std::vector<idx> bands;
              for (std::size_t i : leftover) bands.push_back(s.rs.bands[i]);
              const std::vector<QpResult> qp =
                  s.gw->sigma_diag(bands, s.rs.n_e_points, s.rs.e_step);
              s.gw->set_mtxel_cache({}, {});
              for (std::size_t i = 0; i < leftover.size(); ++i) {
                const std::size_t slot = leftover[i];
                s.out.qp[slot] = qp[i];
                ++ctx.builds.sig;
                count_build("sigma_band");
                if (o.use_cache) ctx.cas.put_qp(s.sig_keys[slot], qp[i]);
                ctx.ws.put_qp(s.sig_keys[slot], qp[i]);
              }
            }
          } else {
            // epsilon job: static head, then the imaginary-axis sweep.
            ctx.ensure_eps(s);
            {
              auto e = ctx.ws.get_matrix(s.eps_key);
              XGW_REQUIRE(e.has_value(), "serve: eps^{-1}(0) unavailable");
              s.out.eps_heads.push_back((*e)(0, 0).real());
            }
            if (s.rs.n_freq > 0) {
              std::vector<double> heads(s.rs.freqs.size(), 0.0);
              std::vector<std::size_t> leftover = s.owned_freqs;
              auto head_from_ws = [&](std::size_t k) {
                auto m = ctx.ws.get_matrix(s.epsf_keys[k]);
                if (!m) return false;
                heads[k] = (*m)(0, 0).real();
                return true;
              };
              for (std::size_t k : s.foreign_freqs)
                if (!head_from_ws(k)) leftover.push_back(k);
              for (std::size_t k : s.cached_freqs) {
                std::optional<ZMatrix> m;
                if (o.use_cache) m = ctx.cas.get_matrix(s.epsf_keys[k]);
                if (m)
                  heads[k] = (*m)(0, 0).real();
                else
                  leftover.push_back(k);
              }
              if (!leftover.empty()) {
                std::sort(leftover.begin(), leftover.end());
                ctx.ensure_wavefunctions(s);
                ChiOptions copt;
                copt.eta = s.rs.eta;
                copt.nv_block = s.rs.nv_block;
                copt.imaginary_axis = true;
                std::vector<double> omegas;
                for (std::size_t k : leftover)
                  omegas.push_back(s.rs.freqs[k]);
                // Per-frequency results are bitwise invariant under
                // batching (core/epsilon.h), so computing only the missing
                // subset reproduces the full sweep's bytes.
                const auto eps = epsilon_inverse_multi(
                    s.gw->mtxel(), s.gw->wavefunctions(), s.gw->coulomb(),
                    std::span<const double>(omegas), copt);
                for (std::size_t i = 0; i < leftover.size(); ++i) {
                  const std::size_t k = leftover[i];
                  heads[k] = eps[i](0, 0).real();
                  ++ctx.builds.epsf;
                  count_build("epsfreq");
                  if (o.use_cache)
                    ctx.cas.put_matrix(s.epsf_keys[k], eps[i]);
                  ctx.ws.put_matrix(s.epsf_keys[k], eps[i]);
                }
              }
              for (double h : heads) s.out.eps_heads.push_back(h);
            }
          }
        }),
        "serve.job");
    for (sched::TaskId d : deps)
      if (d >= 0) graph.add_edge(d, st.work_task);
    states.push_back(std::move(stp));
  }

  // --- execute ------------------------------------------------------------
  sched::Executor ex(opt.workers);
  const sched::ExecStats es = ex.run(graph);

  // --- report -------------------------------------------------------------
  BatchReport rep;
  rep.n_tasks = es.tasks;
  rep.n_edges = es.edges;
  for (const auto& [key, refs] : key_refs) {
    (void)key;
    if (refs > 1) ++rep.shared_nodes;
  }
  rep.mf_builds = builds.mf;
  rep.mtxel_builds = builds.mtxel;
  rep.chi_builds = builds.chi;
  rep.eps_builds = builds.eps;
  rep.epsfreq_builds = builds.epsf;
  rep.sigma_band_builds = builds.sig;
  rep.ws_evictions = ws.evictions();
  rep.cas = cas.stats();

  os << "serve batch: " << jobs.size() << " jobs store " << opt.store_dir
     << " workers " << ex.n_workers() << " verify "
     << mem::to_string(opt.verify) << (opt.use_cache ? "" : " cache off")
     << "\n";
  os << "serve plan: tasks " << rep.n_tasks << " edges " << rep.n_edges
     << " shared_nodes " << rep.shared_nodes << "\n";
  for (const std::string& w : warnings) os << "serve warning: " << w << "\n";

  auto& lat = obs::metrics().histogram("serve/job_wall_us");
  for (auto& stp : states) {
    JobState& st = *stp;
    if (st.done_at != Clock::time_point{})
      st.out.wall_s =
          std::chrono::duration<double>(st.done_at - t0).count();
    for (const std::string* key : {&st.mf_key, &st.chi_key, &st.eps_key})
      if (!key->empty() && key_refs[*key] > 1) ++st.out.shared;
    for (const std::string& k : st.sig_keys)
      if (key_refs[k] > 1) ++st.out.shared;
    for (const std::string& k : st.epsf_keys)
      if (key_refs[k] > 1) ++st.out.shared;
    lat.observe(static_cast<std::uint64_t>(st.out.wall_s * 1e6));

    if (st.out.rc == 0 && st.out.job == "sigma") {
      for (const QpResult& r : st.out.qp)
        os << "band " << r.band << " E_MF " << fmt_ev(r.e_mf) << " SX "
           << fmt_ev(r.sigma.sx.real()) << " CH " << fmt_ev(r.sigma.ch.real())
           << " Z " << canon_double(r.z) << " E_QP " << fmt_ev(r.e_qp)
           << "\n";
    } else if (st.out.rc == 0 && st.out.job == "epsilon") {
      for (std::size_t k = 0; k < st.out.eps_heads.size(); ++k) {
        os << "epsinv_head ";
        if (k == 0)
          os << "static";
        else
          os << "i*" << canon_double(st.rs.freqs[k - 1]);
        os << " " << canon_double(st.out.eps_heads[k]) << "\n";
      }
    }
    os << "serve job " << st.out.name << ": rc " << st.out.rc << " hits "
       << st.out.probe_hits << " misses " << st.out.probe_misses
       << " shared " << st.out.shared;
    char wall[32];
    std::snprintf(wall, sizeof(wall), " wall_s %.3f",
                  st.out.wall_s);
    os << wall;
    if (!st.out.error.empty()) os << " error " << st.out.error;
    os << "\n";
    rep.jobs.push_back(std::move(st.out));
  }

  os << "serve totals: builds mf " << rep.mf_builds << " mtxel "
     << rep.mtxel_builds << " chi " << rep.chi_builds << " eps "
     << rep.eps_builds << " epsf " << rep.epsfreq_builds << " sigma_band "
     << rep.sigma_band_builds << " cas_hits " << rep.cas.hits
     << " cas_misses " << rep.cas.misses << " evictions "
     << rep.cas.evictions << " corrupt " << rep.cas.corrupt << " bytes "
     << cas.disk_bytes() << "\n";

  obs::metrics().gauge("serve/store/bytes").set(
      static_cast<double>(cas.disk_bytes()));
  obs::metrics().gauge("serve/store/entries").set(
      static_cast<double>(cas.size()));

  if (observe) {
    obs::recorder().disable();
    std::string cfg;
    for (const auto& stp : states) {
      cfg += stp->out.name;
      cfg += ' ';
      cfg += stp->eps_key.empty() ? "unresolved" : stp->eps_key;
      cfg += '\n';
    }
    obs::RunReportDoc doc = obs::build_run_report(obs::recorder(), "serve",
                                                  cfg, 0.0, 0.0);
    XGW_REQUIRE(doc.write(opt.report_path),
                "run_batch: cannot write run report to " + opt.report_path);
    os << "run_report_written " << opt.report_path << "\n";
  }
  if (!opt.metrics_path.empty()) {
    obs::record_mem_gauges();
    XGW_REQUIRE(obs::metrics().write_json(opt.metrics_path),
                "run_batch: cannot write metrics to " + opt.metrics_path);
    os << "metrics_written " << opt.metrics_path << "\n";
  }
  return rep;
}

BatchReport run_manifest(const std::string& manifest_path,
                         const ServeOptions& opt, std::ostream& os) {
  return run_batch(load_manifest(manifest_path), opt, os);
}

}  // namespace xgw::serve

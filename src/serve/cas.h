#pragma once

// Content-addressed sub-result store for the serving layer.
//
// Entries are io/binio files (trailing FNV-1a checksum, so every read is
// verified) named `cas_<key>.<kind>.xgw` under one directory — the key
// carries the content address (serve/spec.h), the kind tag makes a damaged
// index rebuildable from a plain directory scan. Commits are torn-write
// safe, the autotune-cache pattern: write to `<file>.tmp`, verify per the
// spill-verify mode (off / size / checksum read-back, the same
// write_verified discipline as mem::SpillPool), then atomically rename
// into place. A verification failure re-writes up to a bounded number of
// rounds; persistent failure (ENOSPC, dying disk) DEGRADES — the entry is
// simply not cached and the batch recomputes, results stay correct, and
// the failure is published to the fault ledger as recovered.
//
// Reads that surface corruption (torn tail, at-rest bit flip — binio's
// checksum catches both) erase the entry, count it, publish the recovery,
// and report a MISS: the serving layer then recomputes the sub-result,
// which is bitwise identical by the determinism contract.
//
// Eviction is LRU over a disk-byte budget: every put/get refreshes the
// entry's recency ordinal, and a put that pushes the store past budget
// drops the stalest entries. The ordinals persist in `cas-index.txt`
// (versioned, checksummed, tmp+rename committed); a damaged or missing
// index costs only the recency order, never the entries.
//
// All operations are serialized on one internal mutex: batch tasks call in
// from every worker, and compute time dominates store time by orders of
// magnitude.

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "core/sigma.h"
#include "la/matrix.h"
#include "mem/spill.h"
#include "mf/wavefunctions.h"

namespace xgw::serve {

/// Payload kind, encoded in the entry file name.
enum class CasKind : std::uint8_t { kMatrix = 0, kWavefunctions, kQpRow };

const char* to_string(CasKind k);

struct CasStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t puts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t corrupt = 0;       ///< entries dropped after a bad read
  std::uint64_t put_failures = 0;  ///< commits abandoned (degraded to uncached)
  std::uint64_t rewrites = 0;      ///< commits redone after failed verification
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
};

class CasStore {
 public:
  /// Opens (creating if needed) the store at `dir` and scans it for
  /// existing entries; stale `.tmp` files from a torn previous commit are
  /// removed. `disk_budget_bytes` caps the on-disk footprint (0 =
  /// unlimited).
  explicit CasStore(std::string dir, std::size_t disk_budget_bytes = 0);
  ~CasStore();

  CasStore(const CasStore&) = delete;
  CasStore& operator=(const CasStore&) = delete;

  /// Index-only presence check — no file I/O, no counter movement.
  bool contains(const std::string& key) const;

  /// contains() that moves the hit/miss counters — the batch planner's
  /// probe, so "resubmit == zero misses" is observable per batch.
  bool probe(const std::string& key);

  void put_matrix(const std::string& key, const ZMatrix& m);
  std::optional<ZMatrix> get_matrix(const std::string& key);

  void put_wavefunctions(const std::string& key, const Wavefunctions& wf);
  std::optional<Wavefunctions> get_wavefunctions(const std::string& key);

  void put_qp(const std::string& key, const QpResult& r);
  std::optional<QpResult> get_qp(const std::string& key);

  /// Commit verification mode (defaults to the process-wide
  /// mem::spill_verify() at construction).
  void set_verify(mem::SpillVerify v);
  mem::SpillVerify verify() const;

  CasStats stats() const;
  std::size_t size() const;
  std::size_t disk_bytes() const;
  std::size_t budget_bytes() const;
  const std::string& dir() const { return dir_; }

  /// Persists the LRU index (also done by the destructor).
  void flush();

 private:
  struct Entry {
    CasKind kind = CasKind::kMatrix;
    std::size_t bytes = 0;
    std::uint64_t seq = 0;  ///< recency ordinal (higher = fresher)
  };

  std::string file_for(const std::string& key, CasKind kind) const;
  void scan_and_load_index();
  void flush_index_locked();
  bool commit_entry(const std::string& key, CasKind kind,
                    std::size_t expected_bytes,
                    const std::function<void(const std::string&)>& write_file,
                    const std::function<bool(const std::string&)>& matches);
  void record_put(const std::string& key, CasKind kind);
  void evict_past_budget(const std::string& keep);
  /// Classifies a failed read: corruption kinds drop the entry and report
  /// a miss; kGeneric/kValidation rethrow.
  void drop_after_bad_read(const std::string& key, const Error& e);

  mutable std::mutex mu_;
  std::string dir_;
  std::size_t budget_ = 0;
  std::size_t total_bytes_ = 0;
  std::uint64_t next_seq_ = 0;
  mem::SpillVerify verify_;
  CasStats stats_;
  std::map<std::string, Entry> entries_;
};

/// QP-row codec: a QpResult packed into a 1x5 complex row so it rides the
/// binio matrix format (doubles round-trip bitwise).
ZMatrix encode_qp(const QpResult& r);
QpResult decode_qp(const ZMatrix& m);

}  // namespace xgw::serve

// xgw_serve_run: batch serving CLI. Takes a manifest of .inp job specs,
// runs them through serve::run_batch against a persistent content-addressed
// sub-result store, and exits non-zero if any job failed.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.h"
#include "mem/spill.h"
#include "serve/batch.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] <manifest>\n"
      << "  <manifest>            text file, one job .inp path per line\n"
      << "                        ('#' comments; paths relative to the\n"
      << "                        manifest's directory)\n"
      << "options:\n"
      << "  --store DIR           CAS directory (default xgw_cas)\n"
      << "  --store-budget-mb N   CAS disk LRU budget (default unlimited)\n"
      << "  --resident-mb N       in-batch workspace cap (default unlimited)\n"
      << "  --memory-budget-mb N  default per-job compute budget\n"
      << "  --workers N           executor workers (default auto)\n"
      << "  --verify MODE         CAS commit check: off|size|checksum\n"
      << "  --no-cache            compute everything, touch no store\n"
      << "  --metrics PATH        write metrics JSON after the batch\n"
      << "  --report PATH         write a run report after the batch\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xgw;
  serve::ServeOptions opt;
  std::string manifest;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << flag << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (a == "--store") {
      opt.store_dir = need_value("--store");
    } else if (a == "--store-budget-mb") {
      opt.store_budget_mb = std::atof(need_value("--store-budget-mb"));
    } else if (a == "--resident-mb") {
      opt.resident_mb = std::atof(need_value("--resident-mb"));
    } else if (a == "--memory-budget-mb") {
      opt.memory_budget_mb = std::atof(need_value("--memory-budget-mb"));
    } else if (a == "--workers") {
      opt.workers = std::atoi(need_value("--workers"));
    } else if (a == "--verify") {
      opt.verify = mem::parse_spill_verify(need_value("--verify"));
    } else if (a == "--no-cache") {
      opt.use_cache = false;
    } else if (a == "--metrics") {
      opt.metrics_path = need_value("--metrics");
    } else if (a == "--report") {
      opt.report_path = need_value("--report");
    } else if (a == "--help" || a == "-h") {
      return usage(argv[0]);
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << argv[0] << ": unknown option " << a << "\n";
      return usage(argv[0]);
    } else if (manifest.empty()) {
      manifest = a;
    } else {
      std::cerr << argv[0] << ": more than one manifest given\n";
      return usage(argv[0]);
    }
  }
  if (manifest.empty()) return usage(argv[0]);

  try {
    const serve::BatchReport rep =
        serve::run_manifest(manifest, opt, std::cout);
    return rep.all_ok() ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

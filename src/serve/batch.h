#pragma once

// xgw-serve batch driver: accepts many GW job specs, probes the
// content-addressed store for every sub-result each spec needs, builds the
// UNION cache-miss DAG — one node per unique missing sub-result, shared by
// every job that needs it — and runs it on sched::TaskGraph/Executor.
//
// Determinism contract: every node computes a sub-result through exactly
// the code path the single-job driver uses (same GwCalculation stages,
// same NV-Block size, same fixed-order reductions) and commits the bytes
// through binio (byte-exact round trips). A consumer therefore cannot
// tell whether its chi/eps/M-block came from a cold compute, a warm CAS
// hit, or another job's task in the same batch — QP energies are bitwise
// identical in all three cases, which is what the CI serve-smoke job and
// bench_serve's drift FATAL check assert.
//
// Node granularity (serve/spec.h): mf (band set), chi(0), eps^{-1}(0),
// eps^{-1}(i omega_k) per frequency, Sigma per band; MTXEL blocks are
// cached per external band through GwCalculation's mtxel hook inside the
// sigma node. Every node is ensure-semantics (workspace -> CAS -> compute),
// so a probe that turns stale mid-batch — an entry evicted by the disk
// budget or dropped after a corrupt read — degrades to recompute, never to
// a wrong or missing answer.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/sigma.h"
#include "mem/spill.h"
#include "serve/cas.h"
#include "serve/spec.h"

namespace xgw::serve {

struct ServeOptions {
  std::string store_dir = "xgw_cas";  ///< CAS directory (shared across runs)
  double store_budget_mb = 0.0;       ///< CAS disk LRU budget; 0 = unlimited
  double resident_mb = 0.0;  ///< batch workspace resident cap; 0 = unlimited
  double memory_budget_mb = 0.0;  ///< default per-job compute budget
  int workers = 0;                ///< executor workers; 0 = default_workers()
  bool use_cache = true;          ///< false: compute-only (bench cold leg)
  mem::SpillVerify verify = mem::SpillVerify::kSize;  ///< CAS commit checks
  std::string metrics_path;  ///< write obs metrics JSON after the batch
  std::string report_path;   ///< write an obs run report after the batch
};

/// Per-job result + service telemetry.
struct JobOutcome {
  std::string name;
  std::string job;  ///< "sigma" | "epsilon"
  int rc = 0;
  std::string error;
  double wall_s = 0.0;  ///< submit -> job completion (advisory)
  idx probe_hits = 0;   ///< sub-results this job found cached at submit
  idx probe_misses = 0; ///< sub-results this job had to have computed
  idx shared = 0;       ///< sub-results shared with another job in the batch
  std::vector<QpResult> qp;       ///< sigma jobs, manifest band order
  std::vector<double> eps_heads;  ///< epsilon jobs: head of eps^{-1}(0)
                                  ///< then each eps^{-1}(i omega_k)
};

/// Whole-batch report: per-job outcomes plus the exact counters the bench
/// gates (builds per stage — the "each shared chi built exactly once"
/// acceptance check — and the CAS hit/miss/evict ledger).
struct BatchReport {
  std::vector<JobOutcome> jobs;
  idx n_tasks = 0;
  idx n_edges = 0;
  idx shared_nodes = 0;  ///< unique DAG nodes consumed by > 1 job
  // Exact build counters (deterministic for a given manifest + store state):
  std::uint64_t mf_builds = 0;
  std::uint64_t mtxel_builds = 0;
  std::uint64_t chi_builds = 0;
  std::uint64_t eps_builds = 0;
  std::uint64_t epsfreq_builds = 0;
  std::uint64_t sigma_band_builds = 0;
  std::uint64_t ws_evictions = 0;
  CasStats cas;  ///< this store instance's counters after the batch

  bool all_ok() const {
    for (const JobOutcome& j : jobs)
      if (j.rc != 0) return false;
    return true;
  }
  std::uint64_t total_builds() const {
    return mf_builds + mtxel_builds + chi_builds + eps_builds +
           epsfreq_builds + sigma_band_builds;
  }
};

/// Runs a batch of job specs against the store described by `opt`,
/// streaming per-job output blocks (manifest order, 17-significant-digit
/// energies so reruns can be diffed bitwise) and status lines to `os`.
BatchReport run_batch(const std::vector<JobSpec>& jobs,
                      const ServeOptions& opt, std::ostream& os);

/// load_manifest + run_batch.
BatchReport run_manifest(const std::string& manifest_path,
                         const ServeOptions& opt, std::ostream& os);

}  // namespace xgw::serve

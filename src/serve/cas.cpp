#include "serve/cas.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "io/binio.h"
#include "io/iohooks.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace xgw::serve {

namespace fs = std::filesystem;

namespace {

constexpr int kMaxCommitRounds = 4;
constexpr const char* kIndexName = "cas-index.txt";
constexpr const char* kIndexMagic = "xgw-cas-index-v1";

void publish_recovered(ErrorKind k) {
  obs::metrics()
      .counter(std::string("fault/io/recovered/") + io::recovered_fault_name(k))
      .add(1);
}

void count(const char* name) {
  obs::metrics().counter(std::string("serve/cas/") + name).add(1);
}

bool bitwise_equal(const ZMatrix& a, const ZMatrix& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(cplx)) == 0;
}

bool bitwise_equal(const Wavefunctions& a, const Wavefunctions& b) {
  return a.n_valence == b.n_valence && bitwise_equal(a.coeff, b.coeff) &&
         a.energy.size() == b.energy.size() &&
         std::memcmp(a.energy.data(), b.energy.data(),
                     a.energy.size() * sizeof(double)) == 0;
}

}  // namespace

const char* to_string(CasKind k) {
  switch (k) {
    case CasKind::kMatrix: return "mat";
    case CasKind::kWavefunctions: return "wfn";
    case CasKind::kQpRow: return "qp";
  }
  return "?";
}

ZMatrix encode_qp(const QpResult& r) {
  ZMatrix m(1, 5);
  m(0, 0) = cplx(static_cast<double>(r.band), r.e_mf);
  m(0, 1) = r.sigma.sx;
  m(0, 2) = r.sigma.ch;
  m(0, 3) = cplx(r.dsigma_de, r.z);
  m(0, 4) = cplx(r.e_qp, 0.0);
  return m;
}

QpResult decode_qp(const ZMatrix& m) {
  XGW_REQUIRE_KIND(m.rows() == 1 && m.cols() == 5,
                   "decode_qp: not a QP row", ErrorKind::kIoCorrupt);
  QpResult r;
  r.band = static_cast<idx>(m(0, 0).real());
  r.e_mf = m(0, 0).imag();
  r.sigma.sx = m(0, 1);
  r.sigma.ch = m(0, 2);
  r.dsigma_de = m(0, 3).real();
  r.z = m(0, 3).imag();
  r.e_qp = m(0, 4).real();
  return r;
}

CasStore::CasStore(std::string dir, std::size_t disk_budget_bytes)
    : dir_(std::move(dir)),
      budget_(disk_budget_bytes),
      verify_(mem::spill_verify()) {
  fs::create_directories(dir_);
  scan_and_load_index();
}

CasStore::~CasStore() {
  try {
    flush();
  } catch (...) {
    // Destructor flush is best-effort; the index is a recency hint only.
  }
}

std::string CasStore::file_for(const std::string& key, CasKind kind) const {
  return dir_ + "/cas_" + key + "." + to_string(kind) + ".xgw";
}

void CasStore::scan_and_load_index() {
  // The files are the source of truth; the index only restores recency.
  for (const auto& de : fs::directory_iterator(dir_)) {
    const std::string name = de.path().filename().string();
    if (name.size() > 4 && name.ends_with(".tmp")) {
      fs::remove(de.path());  // torn previous commit
      continue;
    }
    if (!name.starts_with("cas_") || !name.ends_with(".xgw")) continue;
    const std::string stem = name.substr(4, name.size() - 8);
    const std::size_t dot = stem.rfind('.');
    if (dot == std::string::npos) continue;
    const std::string key = stem.substr(0, dot);
    const std::string tag = stem.substr(dot + 1);
    Entry e;
    if (tag == "mat")
      e.kind = CasKind::kMatrix;
    else if (tag == "wfn")
      e.kind = CasKind::kWavefunctions;
    else if (tag == "qp")
      e.kind = CasKind::kQpRow;
    else
      continue;
    e.bytes = static_cast<std::size_t>(fs::file_size(de.path()));
    entries_[key] = e;
    total_bytes_ += e.bytes;
  }
  // Assign recency: sorted key order as the fallback, index order when the
  // index is intact.
  for (auto& [key, e] : entries_) {
    (void)key;
    e.seq = next_seq_++;
  }
  std::ifstream is(dir_ + "/" + kIndexName);
  if (!is.good()) return;
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  const std::size_t nl = text.rfind("checksum ");
  if (nl == std::string::npos) return;
  const std::string body = text.substr(0, nl);
  std::string sum = text.substr(nl + 9);
  while (!sum.empty() && (sum.back() == '\n' || sum.back() == '\r'))
    sum.pop_back();
  if (obs::fnv1a_hex(body) != sum) return;  // damaged: keep the scan order
  std::istringstream lines(body);
  std::string line;
  if (!std::getline(lines, line) || line != kIndexMagic) return;
  std::uint64_t seq, bytes;
  std::string tag, key;
  while (lines >> seq >> tag >> bytes >> key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) continue;  // evicted/deleted since
    it->second.seq = seq;
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

void CasStore::flush_index_locked() {
  std::string body = kIndexMagic;
  body += '\n';
  for (const auto& [key, e] : entries_) {
    body += std::to_string(e.seq);
    body += ' ';
    body += to_string(e.kind);
    body += ' ';
    body += std::to_string(e.bytes);
    body += ' ';
    body += key;
    body += '\n';
  }
  const std::string text = body + "checksum " + obs::fnv1a_hex(body) + "\n";
  const std::string path = dir_ + "/" + kIndexName;
  const std::string tmp = path + ".tmp";
  try {
    io::HookedFileWriter w(tmp);
    w.put(text.data(), text.size());
    w.finish();
    io::hooked_rename(tmp, path);
  } catch (const Error&) {
    // Best-effort: a lost index only costs the recency order.
    std::error_code ec;
    fs::remove(tmp, ec);
  }
}

void CasStore::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  flush_index_locked();
}

bool CasStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.count(key) != 0;
}

bool CasStore::probe(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  const bool hit = entries_.count(key) != 0;
  if (hit) {
    ++stats_.hits;
    count("hit");
  } else {
    ++stats_.misses;
    count("miss");
  }
  return hit;
}

void CasStore::set_verify(mem::SpillVerify v) {
  std::lock_guard<std::mutex> lk(mu_);
  verify_ = v;
}

mem::SpillVerify CasStore::verify() const {
  std::lock_guard<std::mutex> lk(mu_);
  return verify_;
}

CasStats CasStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t CasStore::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

std::size_t CasStore::disk_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_bytes_;
}

std::size_t CasStore::budget_bytes() const { return budget_; }

bool CasStore::commit_entry(
    const std::string& key, CasKind kind, std::size_t expected_bytes,
    const std::function<void(const std::string&)>& write_file,
    const std::function<bool(const std::string&)>& matches) {
  // Caller holds mu_. Same discipline as SpillPool::write_verified: never
  // report the entry present until the on-disk copy is proven good (to the
  // configured verification level), and degrade instead of dying.
  const std::string file = file_for(key, kind);
  const std::string tmp = file + ".tmp";
  std::vector<ErrorKind> failed;
  bool ok = false;
  for (int round = 0; round < kMaxCommitRounds && !ok; ++round) {
    try {
      write_file(tmp);
      switch (verify_) {
        case mem::SpillVerify::kOff:
          ok = true;
          break;
        case mem::SpillVerify::kSize:
          ok = fs::exists(tmp) &&
               static_cast<std::size_t>(fs::file_size(tmp)) == expected_bytes;
          if (!ok) failed.push_back(ErrorKind::kIoTruncated);
          break;
        case mem::SpillVerify::kChecksum:
          ok = matches(tmp);
          if (!ok) failed.push_back(ErrorKind::kIoCorrupt);
          break;
      }
      if (ok)
        io::io_retry_run("cas_commit", file, false,
                         [&] { io::hooked_rename(tmp, file); });
    } catch (const Error& e) {
      if (e.kind() == ErrorKind::kGeneric ||
          e.kind() == ErrorKind::kValidation)
        throw;
      failed.push_back(e.kind());
      ok = false;
    }
  }
  // Every observed failure ends handled — rewritten or degraded-to-uncached
  // — so it pairs with one recovered mark in the fault ledger.
  for (ErrorKind k : failed) publish_recovered(k);
  if (ok) {
    if (!failed.empty()) {
      ++stats_.rewrites;
      count("rewrite");
    }
    record_put(key, kind);
  } else {
    ++stats_.put_failures;
    count("put_failure");
    std::error_code ec;
    fs::remove(tmp, ec);
  }
  return ok;
}

void CasStore::record_put(const std::string& key, CasKind kind) {
  auto it = entries_.find(key);
  if (it != entries_.end()) total_bytes_ -= it->second.bytes;
  Entry e;
  e.kind = kind;
  e.bytes = static_cast<std::size_t>(fs::file_size(file_for(key, kind)));
  e.seq = next_seq_++;
  entries_[key] = e;
  total_bytes_ += e.bytes;
  ++stats_.puts;
  stats_.bytes_written += e.bytes;
  count("put");
  evict_past_budget(key);
  flush_index_locked();
}

void CasStore::evict_past_budget(const std::string& keep) {
  if (budget_ == 0) return;
  while (total_bytes_ > budget_ && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == entries_.end() || it->second.seq < victim->second.seq)
        victim = it;
    }
    if (victim == entries_.end()) return;
    std::error_code ec;
    fs::remove(file_for(victim->first, victim->second.kind), ec);
    total_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++stats_.evictions;
    count("evict");
  }
}

void CasStore::drop_after_bad_read(const std::string& key, const Error& e) {
  if (e.kind() == ErrorKind::kGeneric || e.kind() == ErrorKind::kValidation)
    throw e;
  // Corruption: the bytes are gone for good — drop the entry so the slot
  // recomputes and recommits. Persistent transient failure: keep the file
  // (the bytes may be fine), still report a miss so the caller recomputes.
  if (is_corruption(e.kind())) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      std::error_code ec;
      fs::remove(file_for(key, it->second.kind), ec);
      total_bytes_ -= it->second.bytes;
      entries_.erase(it);
    }
    ++stats_.corrupt;
    count("corrupt");
    flush_index_locked();
  }
  publish_recovered(e.kind());
  ++stats_.misses;
  count("miss");
}

void CasStore::put_matrix(const std::string& key, const ZMatrix& m) {
  std::lock_guard<std::mutex> lk(mu_);
  commit_entry(
      key, CasKind::kMatrix, matrix_file_bytes(m.rows(), m.cols()),
      [&](const std::string& tmp) { write_matrix(tmp, m); },
      [&](const std::string& tmp) { return bitwise_equal(read_matrix(tmp), m); });
}

std::optional<ZMatrix> CasStore::get_matrix(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.kind != CasKind::kMatrix) {
    ++stats_.misses;
    count("miss");
    return std::nullopt;
  }
  try {
    ZMatrix m = read_matrix(file_for(key, CasKind::kMatrix));
    it->second.seq = next_seq_++;
    ++stats_.hits;
    stats_.bytes_read += it->second.bytes;
    count("hit");
    return m;
  } catch (const Error& e) {
    drop_after_bad_read(key, e);
    return std::nullopt;
  }
}

void CasStore::put_wavefunctions(const std::string& key,
                                 const Wavefunctions& wf) {
  std::lock_guard<std::mutex> lk(mu_);
  commit_entry(
      key, CasKind::kWavefunctions,
      wavefunctions_file_bytes(wf.n_bands(), wf.n_pw()),
      [&](const std::string& tmp) { write_wavefunctions(tmp, wf); },
      [&](const std::string& tmp) {
        return bitwise_equal(read_wavefunctions(tmp), wf);
      });
}

std::optional<Wavefunctions> CasStore::get_wavefunctions(
    const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.kind != CasKind::kWavefunctions) {
    ++stats_.misses;
    count("miss");
    return std::nullopt;
  }
  try {
    Wavefunctions wf = read_wavefunctions(file_for(key, it->second.kind));
    it->second.seq = next_seq_++;
    ++stats_.hits;
    stats_.bytes_read += it->second.bytes;
    count("hit");
    return wf;
  } catch (const Error& e) {
    drop_after_bad_read(key, e);
    return std::nullopt;
  }
}

void CasStore::put_qp(const std::string& key, const QpResult& r) {
  std::lock_guard<std::mutex> lk(mu_);
  const ZMatrix m = encode_qp(r);
  commit_entry(
      key, CasKind::kQpRow, matrix_file_bytes(m.rows(), m.cols()),
      [&](const std::string& tmp) { write_matrix(tmp, m); },
      [&](const std::string& tmp) { return bitwise_equal(read_matrix(tmp), m); });
}

std::optional<QpResult> CasStore::get_qp(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.kind != CasKind::kQpRow) {
    ++stats_.misses;
    count("miss");
    return std::nullopt;
  }
  try {
    const QpResult r = decode_qp(read_matrix(file_for(key, it->second.kind)));
    it->second.seq = next_seq_++;
    ++stats_.hits;
    stats_.bytes_read += it->second.bytes;
    count("hit");
    return r;
  } catch (const Error& e) {
    drop_after_bad_read(key, e);
    return std::nullopt;
  }
}

}  // namespace xgw::serve

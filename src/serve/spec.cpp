#include "serve/spec.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "cli/driver.h"
#include "common/error.h"
#include "common/quadrature.h"
#include "mem/planner.h"
#include "obs/report.h"

namespace xgw::serve {

const char* stage_prefix(Stage s) {
  switch (s) {
    case Stage::kMf: return "mf";
    case Stage::kMtxel: return "mtx";
    case Stage::kChi: return "chi";
    case Stage::kEps: return "eps";
    case Stage::kEpsFreq: return "epsf";
    case Stage::kSigmaBand: return "sig";
    case Stage::kChiTau: return "chit";
    case Stage::kWTau: return "wtau";
    case Stage::kSigmaStBand: return "sigst";
  }
  return "?";
}

std::string canon_double(double v) {
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

namespace {

/// Keys whose value can never change result bytes (runtime/observability
/// knobs): silently stripped from the canonical spec, so a rerun with a
/// checkpoint path or a different worker count hits the same entries. In
/// particular `checkpoint`: a cached sub-result SUPERSEDES a checkpoint —
/// the CAS restarts at per-band granularity, finer than the band-loop
/// snapshot.
bool is_runtime_key(const std::string& k) {
  static const std::vector<std::string> runtime{
      "checkpoint",      "checkpoint_every",     "trace",
      "trace_detail",    "metrics",              "run_report",
      "peak_gflops",     "mem_gbps",             "spill_dir",
      "validate",        "io_retry_attempts",    "io_retry_backoff_ms",
      "spill_verify",    "sched_workers",        "memory_budget_mb",
      "memory_budget_machine",
  };
  for (const std::string& r : runtime)
    if (r == k) return true;
  return false;
}

/// Keys a serve spec may carry beyond the runtime set.
bool is_serve_key(const std::string& k) {
  static const std::vector<std::string> serve{
      "job",        "material",    "supercell",       "vacancy",
      "vacuum",     "psi_cutoff",  "eps_cutoff",      "coulomb",
      "n_bands",    "eta",         "nv_block",        "sigma_bands",
      "n_e_points", "e_step",      "n_freq",          "pseudobands",
      "pseudobands_nxi",           "sigma_method",    "n_tau",
  };
  for (const std::string& s : serve)
    if (s == k) return true;
  return false;
}

using Fields = std::vector<std::pair<std::string, std::string>>;

void add_mf_fields(const ResolvedSpec& s, Fields& f) {
  f.emplace_back("material", s.material);
  f.emplace_back("n_bands", std::to_string(s.n_bands));
  f.emplace_back("pseudobands", s.pseudobands ? "1" : "0");
  f.emplace_back("pseudobands_nxi", std::to_string(s.pseudobands_nxi));
  f.emplace_back("psi_cutoff", canon_double(s.psi_cutoff));
  f.emplace_back("supercell", std::to_string(s.supercell));
  f.emplace_back("vacancy",
                 s.has_vacancy ? std::to_string(s.vacancy) : "none");
  f.emplace_back("vacuum", canon_double(s.vacuum));
}

void add_chi_fields(const ResolvedSpec& s, Fields& f) {
  add_mf_fields(s, f);
  f.emplace_back("eps_cutoff", canon_double(s.eps_cutoff));
  f.emplace_back("eta", canon_double(s.eta));
  f.emplace_back("nv_block", std::to_string(s.nv_block));
  f.emplace_back("q", "0");
}

}  // namespace

ResolvedSpec resolve_spec(const InputFile& in, const SpecDims& dims,
                          double default_budget_mb) {
  ResolvedSpec s;
  s.job = in.require_string("job");
  XGW_REQUIRE_KIND(s.job == "sigma" || s.job == "epsilon",
                   "serve: job '" + s.job +
                       "' is not servable (sigma and epsilon specs only; "
                       "run others through xgw_run batch mode)",
                   ErrorKind::kValidation);
  for (const auto& [k, v] : in.entries()) {
    (void)v;
    XGW_REQUIRE_KIND(
        is_runtime_key(k) || is_serve_key(k),
        "serve: key '" + k +
            "' cannot be canonicalized into a cache key (file-based inputs "
            "and side outputs defeat content addressing)",
        ErrorKind::kValidation);
  }

  s.material = in.require_string("material");
  s.supercell = in.get_int("supercell", 1);
  s.has_vacancy = in.has("vacancy");
  if (s.has_vacancy) s.vacancy = in.get_int("vacancy", 0);
  s.vacuum = in.get_double("vacuum", 16.0);
  s.psi_cutoff = in.get_double("psi_cutoff", -1.0);
  s.n_bands = in.get_int("n_bands", -1);
  s.pseudobands = in.get_bool("pseudobands", false);
  s.pseudobands_nxi = in.get_int("pseudobands_nxi", 3);

  s.eps_cutoff = in.get_double("eps_cutoff", -1.0);
  s.eta = in.get_double("eta", 1e-3);
  s.coulomb = in.get_string("coulomb", "spherical_average");

  s.nv_block = in.get_int("nv_block", 8);
  double budget_mb = default_budget_mb;
  if (in.has("memory_budget_mb") || in.has("memory_budget_machine"))
    budget_mb = resolve_memory_budget_mb(in);
  if (budget_mb > 0.0) {
    mem::PlannerInput pin;
    pin.budget_bytes = mem::mb(budget_mb);
    pin.nv = dims.nv;
    pin.nc = dims.nc;
    pin.ng = dims.ng;
    pin.ncols = dims.ng;
    pin.nfreq = 1;
    pin.threads = 1;
    pin.fixed_bytes = 0;
    s.nv_block = mem::plan(pin).nv_block;
  }

  if (s.job == "sigma") {
    s.sigma_method = in.get_string("sigma_method", "gpp");
    XGW_REQUIRE_KIND(
        s.sigma_method == "gpp" || s.sigma_method == "space_time",
        "serve: unknown sigma_method '" + s.sigma_method + "'",
        ErrorKind::kValidation);
    // The batch executor runs the GPP route only. Accepting a space_time
    // spec here would compute GPP numbers and file them under this job's
    // keys — a poisoned cache every later run would trust. Reject instead.
    XGW_REQUIRE_KIND(s.sigma_method == "gpp",
                     "serve: sigma_method 'space_time' is not servable yet "
                     "(batch executor runs the GPP route; run space-time "
                     "jobs through xgw_run)",
                     ErrorKind::kValidation);
    s.n_tau = in.get_int("n_tau", 14);
    s.n_e_points = in.get_int("n_e_points", 3);
    s.e_step = in.get_double("e_step", 0.02);
    s.bands = in.get_int_list("sigma_bands");
    if (s.bands.empty()) s.bands = {dims.nv - 1, dims.nv};
  } else {
    s.n_freq = in.has("n_freq") ? in.get_int("n_freq", 8) : 0;
    if (s.n_freq > 0)
      s.freqs = gauss_legendre_semi_infinite(s.n_freq, 1.0).nodes;
  }
  return s;
}

std::string canonical_stage_spec(const ResolvedSpec& s, Stage stage,
                                 idx band, idx freq_index) {
  Fields f;
  switch (stage) {
    case Stage::kMf:
      add_mf_fields(s, f);
      break;
    case Stage::kMtxel:
      XGW_REQUIRE(band >= 0, "mtx key needs a band");
      add_mf_fields(s, f);
      f.emplace_back("band", std::to_string(band));
      f.emplace_back("eps_cutoff", canon_double(s.eps_cutoff));
      break;
    case Stage::kChi:
      add_chi_fields(s, f);
      f.emplace_back("freq", "static");
      break;
    case Stage::kEps:
      add_chi_fields(s, f);
      f.emplace_back("coulomb", s.coulomb);
      f.emplace_back("freq", "static");
      break;
    case Stage::kEpsFreq: {
      XGW_REQUIRE(freq_index >= 0 &&
                      freq_index < static_cast<idx>(s.freqs.size()),
                  "epsf key needs a frequency index");
      add_chi_fields(s, f);
      f.emplace_back("coulomb", s.coulomb);
      f.emplace_back("axis", "imaginary");
      f.emplace_back(
          "freq",
          canon_double(s.freqs[static_cast<std::size_t>(freq_index)]));
      f.emplace_back("freq_index", std::to_string(freq_index));
      f.emplace_back("n_freq", std::to_string(s.n_freq));
      break;
    }
    case Stage::kSigmaBand:
      XGW_REQUIRE(band >= 0, "sig key needs a band");
      add_chi_fields(s, f);
      f.emplace_back("coulomb", s.coulomb);
      f.emplace_back("freq", "static");
      f.emplace_back("band", std::to_string(band));
      f.emplace_back("e_step", canon_double(s.e_step));
      f.emplace_back("n_e_points", std::to_string(s.n_e_points));
      break;
    // Space-time stages (NEW cases only — every pre-existing canonical
    // text above stays byte-identical). They carry the method tag and the
    // minimax order so no space-time entry can ever collide with a GPP or
    // full-frequency one, even if the method-blind fields match.
    case Stage::kChiTau:
      XGW_REQUIRE(freq_index >= 0, "chit key needs a tau index");
      add_chi_fields(s, f);
      f.emplace_back("axis", "imaginary_time");
      f.emplace_back("n_tau", std::to_string(s.n_tau));
      f.emplace_back("sigma_method", "space_time");
      f.emplace_back("tau_index", std::to_string(freq_index));
      break;
    case Stage::kWTau:
      add_chi_fields(s, f);
      f.emplace_back("axis", "imaginary_time");
      f.emplace_back("coulomb", s.coulomb);
      f.emplace_back("n_tau", std::to_string(s.n_tau));
      f.emplace_back("sigma_method", "space_time");
      break;
    case Stage::kSigmaStBand:
      XGW_REQUIRE(band >= 0, "sigst key needs a band");
      add_chi_fields(s, f);
      f.emplace_back("band", std::to_string(band));
      f.emplace_back("coulomb", s.coulomb);
      f.emplace_back("n_tau", std::to_string(s.n_tau));
      f.emplace_back("sigma_method", "space_time");
      break;
  }
  std::sort(f.begin(), f.end());
  std::string text = "schema xgw-cas-key-v1\nstage ";
  text += stage_prefix(stage);
  text += '\n';
  for (const auto& [k, v] : f) {
    text += k;
    text += ' ';
    text += v;
    text += '\n';
  }
  return text;
}

std::string cache_key(const ResolvedSpec& s, Stage stage, idx band,
                      idx freq_index) {
  return std::string(stage_prefix(stage)) + "-" +
         obs::fnv1a_hex(canonical_stage_spec(s, stage, band, freq_index));
}

JobSpec load_job(const std::string& path) {
  JobSpec j;
  j.path = path;
  j.name = std::filesystem::path(path).stem().string();
  j.input = InputFile::load(path, known_input_keys());
  return j;
}

std::vector<JobSpec> load_manifest(const std::string& path) {
  std::vector<JobSpec> jobs;
  for (const std::string& p : read_job_manifest(path))
    jobs.push_back(load_job(p));
  return jobs;
}

}  // namespace xgw::serve

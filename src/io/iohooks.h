#pragma once

// Pluggable I/O interposition seam + retry/backoff policy for every file
// that xgw reads or writes (binio matrix/WFN files, spill pages,
// checkpoints).
//
// Production builds pay one relaxed atomic pointer load per operation: when
// no hooks are installed the fast path is a nullptr check and the raw
// stream call. With hooks installed (the storage-fault chaos layer,
// runtime/fault.h::IoFaultInjector), every open/read/write/flush/rename
// first consults the hook, which may
//   * throw a classified xgw::Error (transient EIO, ENOSPC) to fail the op,
//   * mutate the outgoing buffer (silent bit-flip corruption), or
//   * shorten the write (torn write: the file silently ends early).
//
// Recovery is layered ABOVE the seam: whole-file operations (write_matrix,
// read_matrix, checkpoint_save, spill page-in) run under `io_retry_run`,
// which retries transient failures with deterministic seeded-jitter
// exponential backoff and publishes fault/io/... metrics, so a blip never
// kills an hours-long campaign. Corruption kinds are NOT retried on the
// write path (the bytes are wrong, not the timing) — they surface to the
// spill re-materialization / checkpoint-generation-fallback layers.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/error.h"

namespace xgw::io {

/// Operation classes visible to the hooks.
enum class IoOp : std::uint8_t {
  kOpenRead = 0,
  kOpenWrite,
  kRead,
  kWrite,
  kFlush,
  kRename,
};

const char* to_string(IoOp op);

/// Interposition interface. Implementations must be thread-safe (spill
/// eviction can run from any thread holding the pool).
class IoHooks {
 public:
  virtual ~IoHooks();

  /// Called BEFORE bytes move. May throw a classified xgw::Error to fail
  /// the operation (kIoTransient / kIoNoSpace). `bytes` is 0 for
  /// open/flush/rename.
  virtual void before(const std::string& path, IoOp op, std::uint64_t offset,
                      std::size_t bytes) = 0;

  /// Write-path mutation hook: `data` is a scratch COPY of the outgoing
  /// buffer that may be corrupted in place; the return value is how many
  /// bytes to actually write (< n simulates a torn write — the writer then
  /// silently drops everything after the tear). Default: identity.
  virtual std::size_t on_write(const std::string& path, std::uint64_t offset,
                               unsigned char* data, std::size_t n);
};

/// Installs (or clears, with nullptr) the process-wide hooks. The caller
/// keeps ownership and must keep the object alive while installed.
void set_io_hooks(IoHooks* hooks) noexcept;
IoHooks* io_hooks() noexcept;

/// RAII installer: restores the previously installed hooks on destruction.
class ScopedIoHooks {
 public:
  explicit ScopedIoHooks(IoHooks* hooks);
  ~ScopedIoHooks();
  ScopedIoHooks(const ScopedIoHooks&) = delete;
  ScopedIoHooks& operator=(const ScopedIoHooks&) = delete;

 private:
  IoHooks* prev_;
};

/// Bounded-retry policy for transient I/O failures. Backoff for attempt k
/// (0-based failure count) is
///   backoff_base_s * backoff_mult^k * (1 + jitter * u)
/// with u drawn deterministically from (seed, path hash, k) — reruns of
/// the same schedule back off identically, but distinct files never
/// thundering-herd on the same instant.
struct IoRetryPolicy {
  int max_attempts = 1;         ///< 1 = retry disabled (seed default)
  double backoff_base_s = 1e-3; ///< first backoff
  double backoff_mult = 2.0;    ///< exponential growth per failure
  double jitter = 0.5;          ///< uniform jitter fraction on top
  std::uint64_t seed = 0;       ///< jitter stream seed
  bool sleep = true;            ///< false: account the backoff, skip the nap

  bool enabled() const { return max_attempts > 1; }
};

/// Process-wide policy consulted by binio / spill / checkpoint operations.
void set_io_retry_policy(const IoRetryPolicy& policy) noexcept;
IoRetryPolicy io_retry_policy() noexcept;

/// Deterministic backoff (seconds) for the k-th consecutive failure on
/// `path` under `policy` (exposed for tests).
double io_backoff_s(const IoRetryPolicy& policy, const std::string& path,
                    int failure);

/// Runs `body` with bounded retry under the global policy. Retries when the
/// thrown Error's kind is kIoTransient, or — iff `retry_corruption` (read
/// paths, where a fresh read may succeed after a transient in-flight flip)
/// — a corruption kind. Rethrows the last error once attempts are
/// exhausted. On eventual success after n > 0 failures, publishes one
/// fault/io/recovered/<kind> metric per caught failure and returns the
/// number of failures recovered from.
int io_retry_run(const char* what, const std::string& path,
                 bool retry_corruption, const std::function<void()>& body);

/// FNV-1a over a byte range (shared by binio checksums and the backoff
/// jitter keying).
std::uint64_t fnv1a_bytes(const void* data, std::size_t n,
                          std::uint64_t seed = 0xcbf29ce484222325ULL);

/// The injected-fault name an ErrorKind observed during recovery pairs
/// with, so fault/io/injected/<name> and fault/io/recovered/<name> line up
/// exactly: a torn write is DISCOVERED as a truncated read (-> "torn"), a
/// silent bit flip as a checksum mismatch (-> "bitflip").
const char* recovered_fault_name(ErrorKind k);

// --- hook-aware file primitives ------------------------------------------
//
// Thin ofstream/ifstream wrappers that route every byte through the hooks
// seam and throw classified errors naming path + byte offset. binio's
// checksummed formats and runtime/checkpoint's CRC container both build on
// these, so fault injection and retry cover every storage path uniformly.

class HookedFileWriter {
 public:
  explicit HookedFileWriter(std::string path);

  /// Writes n bytes (subject to hook mutation/tearing). The caller's
  /// buffer is never modified.
  void put(const void* data, std::size_t n);

  /// Flush + final error check. Must be called exactly once.
  void finish();

  const std::string& path() const noexcept { return path_; }
  std::uint64_t offset() const noexcept { return offset_; }
  /// True once a hook tore the stream: later bytes are silently dropped,
  /// exactly like a partial write that never reached the disk.
  bool torn() const noexcept { return torn_; }

 private:
  std::string path_;
  std::ofstream os_;
  std::uint64_t offset_ = 0;
  bool torn_ = false;
  std::vector<unsigned char> scratch_;
};

class HookedFileReader {
 public:
  explicit HookedFileReader(std::string path);

  /// Reads exactly n bytes or throws kIoTruncated naming path + offset.
  void get(void* data, std::size_t n);

  /// Reads up to n bytes; returns the count actually read (trailer probes).
  std::size_t get_some(void* data, std::size_t n);

  const std::string& path() const noexcept { return path_; }
  std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::string path_;
  std::ifstream is_;
  std::uint64_t offset_ = 0;
};

/// Hook-aware atomic rename (checkpoint promotion). Throws kIoTransient on
/// filesystem failure so the save-level retry loop can re-attempt it.
void hooked_rename(const std::string& from, const std::string& to);

}  // namespace xgw::io

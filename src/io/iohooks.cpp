#include "io/iohooks.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xgw::io {

const char* to_string(IoOp op) {
  switch (op) {
    case IoOp::kOpenRead:
      return "open_read";
    case IoOp::kOpenWrite:
      return "open_write";
    case IoOp::kRead:
      return "read";
    case IoOp::kWrite:
      return "write";
    case IoOp::kFlush:
      return "flush";
    case IoOp::kRename:
      return "rename";
  }
  return "unknown";
}

IoHooks::~IoHooks() = default;

std::size_t IoHooks::on_write(const std::string&, std::uint64_t,
                              unsigned char*, std::size_t n) {
  return n;
}

namespace {

std::atomic<IoHooks*> g_hooks{nullptr};

// The policy is read on every whole-file op and written only from
// single-threaded setup (driver / test fixtures); a mutex-free word-copy
// under a tiny spinlock keeps the read path allocation-free.
std::atomic<int> g_policy_epoch{0};
IoRetryPolicy g_policy{};

}  // namespace

const char* recovered_fault_name(ErrorKind k) {
  switch (k) {
    case ErrorKind::kIoTransient:
      return "transient";
    case ErrorKind::kIoNoSpace:
      return "nospace";
    case ErrorKind::kIoCorrupt:
      return "bitflip";
    case ErrorKind::kIoTruncated:
      return "torn";
    default:
      return "other";
  }
}

void set_io_hooks(IoHooks* hooks) noexcept {
  g_hooks.store(hooks, std::memory_order_release);
}

IoHooks* io_hooks() noexcept {
  return g_hooks.load(std::memory_order_acquire);
}

ScopedIoHooks::ScopedIoHooks(IoHooks* hooks) : prev_(io_hooks()) {
  set_io_hooks(hooks);
}

ScopedIoHooks::~ScopedIoHooks() { set_io_hooks(prev_); }

void set_io_retry_policy(const IoRetryPolicy& policy) noexcept {
  g_policy = policy;
  g_policy_epoch.fetch_add(1, std::memory_order_release);
}

IoRetryPolicy io_retry_policy() noexcept {
  (void)g_policy_epoch.load(std::memory_order_acquire);
  return g_policy;
}

std::uint64_t fnv1a_bytes(const void* data, std::size_t n,
                          std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

double io_backoff_s(const IoRetryPolicy& policy, const std::string& path,
                    int failure) {
  double b = policy.backoff_base_s;
  for (int i = 0; i < failure; ++i) b *= policy.backoff_mult;
  if (policy.jitter > 0.0) {
    Rng rng(policy.seed ^ fnv1a_bytes(path.data(), path.size()) ^
            (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(failure + 1)));
    b *= 1.0 + policy.jitter * rng.uniform();
  }
  return b;
}

int io_retry_run(const char* what, const std::string& path,
                 bool retry_corruption, const std::function<void()>& body) {
  const IoRetryPolicy policy = io_retry_policy();
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  int caught = 0;
  for (int attempt = 0;; ++attempt) {
    try {
      body();
      return caught;
    } catch (const Error& e) {
      const ErrorKind k = e.kind();
      const bool retryable =
          is_transient(k) || (retry_corruption && is_corruption(k));
      if (!retryable || attempt + 1 >= max_attempts) throw;
      ++caught;
      obs::metrics().counter("fault/io/retries").inc();
      // Recovered-counter accounting rule: a TRANSIENT failure is a
      // distinct event that throws exactly once and is neutralized right
      // here, by retrying — count it now, even if the whole operation
      // later fails for an unrelated reason (a higher layer then recovers
      // the remainder and counts only that). Corruption kinds are NOT
      // counted here: a retried read of an at-rest-corrupt file
      // re-discovers the SAME event each attempt, and the layer that
      // finally neutralizes the bad file (rewrite, re-materialization,
      // checkpoint fallback) counts it once. This is what keeps
      // fault/io/injected/* == fault/io/recovered/* exact in the chaos
      // harness.
      if (is_transient(k))
        obs::metrics()
            .counter(std::string("fault/io/recovered/") +
                     recovered_fault_name(k))
            .inc();
      const double backoff = io_backoff_s(policy, path, attempt);
      obs::metrics()
          .counter("fault/io/backoff_us")
          .add(static_cast<std::uint64_t>(backoff * 1e6));
      if (obs::trace_enabled())
        obs::recorder().record_instant(
            "io_retry", "fault",
            std::string("\"op\":\"") + what + "\",\"path\":\"" + path +
                "\",\"kind\":\"" + to_string(k) + "\",\"attempt\":" +
                std::to_string(attempt + 1) + ",\"backoff_s\":" +
                std::to_string(backoff));
      if (policy.sleep && backoff > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
  }
}

// --- hook-aware file primitives ------------------------------------------

HookedFileWriter::HookedFileWriter(std::string path)
    : path_(std::move(path)) {
  if (IoHooks* h = io_hooks()) h->before(path_, IoOp::kOpenWrite, 0, 0);
  os_.open(path_, std::ios::binary | std::ios::trunc);
  XGW_REQUIRE_KIND(os_.good(),
                   "io: cannot open file for writing: " + path_,
                   ErrorKind::kIoTransient);
}

void HookedFileWriter::put(const void* data, std::size_t n) {
  if (torn_) {
    offset_ += n;  // bytes the caller BELIEVES were written
    return;
  }
  const unsigned char* src = static_cast<const unsigned char*>(data);
  std::size_t write_n = n;
  if (IoHooks* h = io_hooks()) {
    h->before(path_, IoOp::kWrite, offset_, n);  // may throw classified
    scratch_.assign(src, src + n);
    write_n = h->on_write(path_, offset_, scratch_.data(), n);
    XGW_REQUIRE(write_n <= n, "IoHooks::on_write grew the buffer");
    src = scratch_.data();
    if (write_n < n) torn_ = true;
  }
  os_.write(reinterpret_cast<const char*>(src),
            static_cast<std::streamsize>(write_n));
  XGW_REQUIRE_KIND(os_.good(),
                   "io: write failed: '" + path_ + "' at byte offset " +
                       std::to_string(offset_),
                   ErrorKind::kIoTransient);
  offset_ += n;
}

void HookedFileWriter::finish() {
  if (IoHooks* h = io_hooks()) h->before(path_, IoOp::kFlush, offset_, 0);
  os_.flush();
  XGW_REQUIRE_KIND(os_.good(),
                   "io: flush failed: '" + path_ + "' at byte offset " +
                       std::to_string(offset_),
                   ErrorKind::kIoTransient);
}

HookedFileReader::HookedFileReader(std::string path)
    : path_(std::move(path)) {
  if (IoHooks* h = io_hooks()) h->before(path_, IoOp::kOpenRead, 0, 0);
  is_.open(path_, std::ios::binary);
  XGW_REQUIRE_KIND(is_.good(),
                   "io: cannot open file for reading: " + path_,
                   ErrorKind::kIoTransient);
}

void HookedFileReader::get(void* data, std::size_t n) {
  if (IoHooks* h = io_hooks()) h->before(path_, IoOp::kRead, offset_, n);
  is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  XGW_REQUIRE_KIND(is_.gcount() == static_cast<std::streamsize>(n),
                   "io: truncated file: '" + path_ + "': expected " +
                       std::to_string(n) + " bytes at byte offset " +
                       std::to_string(offset_) + ", got " +
                       std::to_string(is_.gcount()),
                   ErrorKind::kIoTruncated);
  offset_ += n;
}

std::size_t HookedFileReader::get_some(void* data, std::size_t n) {
  if (IoHooks* h = io_hooks()) h->before(path_, IoOp::kRead, offset_, n);
  is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  const std::size_t got = static_cast<std::size_t>(is_.gcount());
  offset_ += got;
  if (got < n) is_.clear();
  return got;
}

void hooked_rename(const std::string& from, const std::string& to) {
  if (IoHooks* h = io_hooks()) h->before(to, IoOp::kRename, 0, 0);
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  XGW_REQUIRE_KIND(!ec,
                   "io: rename failed: '" + from + "' -> '" + to + "': " +
                       ec.message(),
                   ErrorKind::kIoTransient);
}

}  // namespace xgw::io

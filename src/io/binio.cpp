#include "io/binio.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.h"

namespace xgw {

namespace {

constexpr char kMagic[4] = {'X', 'G', 'W', '1'};
constexpr std::uint32_t kKindMatrix = 1;
constexpr std::uint32_t kKindWavefunctions = 2;

std::uint64_t fnv1a(const unsigned char* data, std::size_t n,
                    std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct Header {
  char magic[4];
  std::uint32_t kind;
  std::int64_t rows;
  std::int64_t cols;
  std::int64_t payload_bytes;
};
static_assert(sizeof(Header) == 32, "header must be 32 bytes");

class Writer {
 public:
  explicit Writer(std::string path)
      : path_(std::move(path)), os_(path_, std::ios::binary) {
    XGW_REQUIRE(os_.good(), "binio: cannot open file for writing: " + path_);
  }

  void put(const void* data, std::size_t n) {
    os_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(n));
    hash_ = fnv1a(static_cast<const unsigned char*>(data), n, hash_);
    offset_ += n;
  }

  void finish() {
    const std::uint64_t h = hash_;
    os_.write(reinterpret_cast<const char*>(&h), sizeof(h));
    os_.flush();
    XGW_REQUIRE(os_.good(), "binio: write failed: '" + path_ +
                                "' at byte offset " + std::to_string(offset_));
  }

 private:
  std::string path_;
  std::ofstream os_;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
  std::size_t offset_ = 0;
};

// Every read error names the file and the byte offset where the read
// started — a restart that dies on a corrupt checkpoint must tell the
// operator WHICH file and WHERE, not just that "a" checksum failed.
class Reader {
 public:
  explicit Reader(std::string path)
      : path_(std::move(path)), is_(path_, std::ios::binary) {
    XGW_REQUIRE(is_.good(), "binio: cannot open file for reading: " + path_);
  }

  void get(void* data, std::size_t n) {
    is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    XGW_REQUIRE(is_.gcount() == static_cast<std::streamsize>(n),
                "binio: truncated file: '" + path_ + "': expected " +
                    std::to_string(n) + " bytes at byte offset " +
                    std::to_string(offset_) + ", got " +
                    std::to_string(is_.gcount()));
    hash_ = fnv1a(static_cast<unsigned char*>(data), n, hash_);
    offset_ += n;
  }

  void verify_checksum() {
    std::uint64_t stored = 0;
    const std::uint64_t computed = hash_;
    is_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    XGW_REQUIRE(is_.gcount() == sizeof(stored),
                "binio: missing checksum: '" + path_ + "' at byte offset " +
                    std::to_string(offset_));
    XGW_REQUIRE(stored == computed,
                "binio: checksum mismatch (corrupt file): '" + path_ +
                    "': payload of " + std::to_string(offset_) +
                    " bytes hashes to " + std::to_string(computed) +
                    ", file stores " + std::to_string(stored));
  }

  const std::string& path() const noexcept { return path_; }
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::string path_;
  std::ifstream is_;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
  std::size_t offset_ = 0;
};

Header make_header(std::uint32_t kind, idx rows, idx cols,
                   std::int64_t payload) {
  Header h{};
  std::memcpy(h.magic, kMagic, 4);
  h.kind = kind;
  h.rows = rows;
  h.cols = cols;
  h.payload_bytes = payload;
  return h;
}

Header read_header(Reader& r, std::uint32_t expected_kind) {
  Header h{};
  r.get(&h, sizeof(h));
  XGW_REQUIRE(std::memcmp(h.magic, kMagic, 4) == 0,
              "binio: bad magic (not an xgw file): '" + r.path() +
                  "' at byte offset 0");
  XGW_REQUIRE(h.kind == expected_kind,
              "binio: wrong file kind: '" + r.path() + "' at byte offset 4: "
                  "expected kind " + std::to_string(expected_kind) +
                  ", file has kind " + std::to_string(h.kind));
  XGW_REQUIRE(h.rows >= 0 && h.cols >= 0,
              "binio: bad dimensions: '" + r.path() + "' at byte offset 8");
  return h;
}

}  // namespace

void write_matrix(const std::string& path, const ZMatrix& m) {
  Writer w(path);
  const std::int64_t payload =
      static_cast<std::int64_t>(m.size()) * static_cast<std::int64_t>(sizeof(cplx));
  const Header h = make_header(kKindMatrix, m.rows(), m.cols(), payload);
  w.put(&h, sizeof(h));
  w.put(m.data(), static_cast<std::size_t>(payload));
  w.finish();
}

ZMatrix read_matrix(const std::string& path) {
  Reader r(path);
  const Header h = read_header(r, kKindMatrix);
  ZMatrix m(h.rows, h.cols);
  XGW_REQUIRE(h.payload_bytes ==
                  static_cast<std::int64_t>(m.size()) *
                      static_cast<std::int64_t>(sizeof(cplx)),
              "binio: payload size mismatch: '" + path +
                  "' at byte offset 16");
  r.get(m.data(), static_cast<std::size_t>(h.payload_bytes));
  r.verify_checksum();
  return m;
}

void write_wavefunctions(const std::string& path, const Wavefunctions& wf) {
  Writer w(path);
  const std::int64_t coeff_bytes =
      static_cast<std::int64_t>(wf.coeff.size()) *
      static_cast<std::int64_t>(sizeof(cplx));
  const std::int64_t energy_bytes =
      static_cast<std::int64_t>(wf.energy.size()) *
      static_cast<std::int64_t>(sizeof(double));
  const Header h = make_header(kKindWavefunctions, wf.n_bands(), wf.n_pw(),
                               coeff_bytes + energy_bytes);
  w.put(&h, sizeof(h));
  const std::int64_t nval = wf.n_valence;
  w.put(&nval, sizeof(nval));
  w.put(wf.coeff.data(), static_cast<std::size_t>(coeff_bytes));
  w.put(wf.energy.data(), static_cast<std::size_t>(energy_bytes));
  w.finish();
}

Wavefunctions read_wavefunctions(const std::string& path) {
  Reader r(path);
  const Header h = read_header(r, kKindWavefunctions);
  std::int64_t nval = 0;
  r.get(&nval, sizeof(nval));
  XGW_REQUIRE(nval >= 0 && nval <= h.rows,
              "binio: bad n_valence: '" + path + "' at byte offset 32");

  Wavefunctions wf;
  wf.coeff = ZMatrix(h.rows, h.cols);
  wf.energy.resize(static_cast<std::size_t>(h.rows));
  wf.n_valence = nval;
  r.get(wf.coeff.data(),
        static_cast<std::size_t>(wf.coeff.size()) * sizeof(cplx));
  r.get(wf.energy.data(), wf.energy.size() * sizeof(double));
  r.verify_checksum();
  return wf;
}

std::size_t matrix_file_bytes(idx rows, idx cols) {
  return sizeof(Header) + static_cast<std::size_t>(rows * cols) * sizeof(cplx) +
         sizeof(std::uint64_t);
}

std::size_t wavefunctions_file_bytes(idx n_bands, idx n_pw) {
  return sizeof(Header) + sizeof(std::int64_t) +
         static_cast<std::size_t>(n_bands * n_pw) * sizeof(cplx) +
         static_cast<std::size_t>(n_bands) * sizeof(double) +
         sizeof(std::uint64_t);
}

}  // namespace xgw

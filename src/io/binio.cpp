#include "io/binio.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <vector>

#include "common/error.h"
#include "io/iohooks.h"

namespace xgw {

namespace {

using io::HookedFileReader;
using io::HookedFileWriter;

constexpr char kMagic[4] = {'X', 'G', 'W', '1'};
constexpr std::uint32_t kKindMatrix = 1;
constexpr std::uint32_t kKindWavefunctions = 2;

struct Header {
  char magic[4];
  std::uint32_t kind;
  std::int64_t rows;
  std::int64_t cols;
  std::int64_t payload_bytes;
};
static_assert(sizeof(Header) == 32, "header must be 32 bytes");

// Checksummed binio writer over the hook-aware file primitive. The FNV-1a
// hash is computed over the INTENDED bytes before the hooks see them: an
// injected silent bit-flip or torn write therefore leaves a file whose
// stored checksum disagrees with its contents, exactly like real at-rest
// corruption — readers detect it, they never trust it.
class Writer {
 public:
  explicit Writer(const std::string& path) : file_(path) {}

  void put(const void* data, std::size_t n) {
    hash_ = io::fnv1a_bytes(data, n, hash_);
    file_.put(data, n);
  }

  void finish() {
    const std::uint64_t h = hash_;
    file_.put(&h, sizeof(h));
    file_.finish();
  }

 private:
  HookedFileWriter file_;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// Every read error names the file and the byte offset where the read
// started — a restart that dies on a corrupt checkpoint must tell the
// operator WHICH file and WHERE, not just that "a" checksum failed. Errors
// carry ErrorKind so the recovery layers can classify without parsing.
class Reader {
 public:
  explicit Reader(const std::string& path) : file_(path) {}

  void get(void* data, std::size_t n) {
    file_.get(data, n);
    hash_ = io::fnv1a_bytes(data, n, hash_);
  }

  void verify_checksum() {
    std::uint64_t stored = 0;
    const std::uint64_t computed = hash_;
    const std::size_t got = file_.get_some(&stored, sizeof(stored));
    XGW_REQUIRE_KIND(got == sizeof(stored),
                     "binio: missing checksum: '" + file_.path() +
                         "' at byte offset " + std::to_string(file_.offset()),
                     ErrorKind::kIoTruncated);
    XGW_REQUIRE_KIND(stored == computed,
                     "binio: checksum mismatch (corrupt file): '" +
                         file_.path() + "': payload of " +
                         std::to_string(file_.offset() - sizeof(stored)) +
                         " bytes hashes to " + std::to_string(computed) +
                         ", file stores " + std::to_string(stored),
                     ErrorKind::kIoCorrupt);
  }

  const std::string& path() const noexcept { return file_.path(); }
  std::size_t offset() const noexcept {
    return static_cast<std::size_t>(file_.offset());
  }

 private:
  HookedFileReader file_;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

Header make_header(std::uint32_t kind, idx rows, idx cols,
                   std::int64_t payload) {
  Header h{};
  std::memcpy(h.magic, kMagic, 4);
  h.kind = kind;
  h.rows = rows;
  h.cols = cols;
  h.payload_bytes = payload;
  return h;
}

/// True iff rows*cols*unit == want, computed without overflow. The header
/// fields are untrusted bytes: a corrupt rows of 2^60 must fail this check,
/// not wrap the multiplication.
bool product_matches(std::int64_t rows, std::int64_t cols, std::int64_t unit,
                     std::int64_t want) {
  if (want < 0 || want % unit != 0) return false;
  const std::int64_t cells = want / unit;
  if (rows == 0 || cols == 0) return cells == 0;
  return cells % rows == 0 && cells / rows == cols;
}

// The checksum that proves a file honest sits AFTER the payload, so a reader
// must not size any allocation from header fields alone — a single flipped
// bit in `rows` would otherwise demand a multi-GB buffer before the
// mismatch is ever detected (found by the storage-fault chaos harness).
// Every header is therefore proven consistent with the one fact the
// filesystem provides up front: the actual file size.
Header read_header(Reader& r, std::uint32_t expected_kind,
                   std::uint64_t extra_bytes) {
  Header h{};
  r.get(&h, sizeof(h));
  XGW_REQUIRE_KIND(std::memcmp(h.magic, kMagic, 4) == 0,
                   "binio: bad magic (not an xgw file): '" + r.path() +
                       "' at byte offset 0",
                   ErrorKind::kIoCorrupt);
  XGW_REQUIRE_KIND(h.kind == expected_kind,
                   "binio: wrong file kind: '" + r.path() +
                       "' at byte offset 4: expected kind " +
                       std::to_string(expected_kind) + ", file has kind " +
                       std::to_string(h.kind),
                   ErrorKind::kIoCorrupt);
  XGW_REQUIRE_KIND(h.rows >= 0 && h.cols >= 0 && h.payload_bytes >= 0,
                   "binio: bad dimensions: '" + r.path() +
                       "' at byte offset 8",
                   ErrorKind::kIoCorrupt);
  std::error_code ec;
  const std::uint64_t actual = std::filesystem::file_size(r.path(), ec);
  const std::uint64_t expected =
      sizeof(Header) + extra_bytes +
      static_cast<std::uint64_t>(h.payload_bytes) + sizeof(std::uint64_t);
  XGW_REQUIRE_KIND(!ec && actual == expected,
                   "binio: header/file-size mismatch: '" + r.path() +
                       "': header implies " + std::to_string(expected) +
                       " bytes, file has " +
                       (ec ? ec.message() : std::to_string(actual)),
                   ErrorKind::kIoCorrupt);
  return h;
}

}  // namespace

void write_matrix(const std::string& path, const ZMatrix& m) {
  io::io_retry_run("write_matrix", path, /*retry_corruption=*/false, [&] {
    Writer w(path);
    const std::int64_t payload = static_cast<std::int64_t>(m.size()) *
                                 static_cast<std::int64_t>(sizeof(cplx));
    const Header h = make_header(kKindMatrix, m.rows(), m.cols(), payload);
    w.put(&h, sizeof(h));
    w.put(m.data(), static_cast<std::size_t>(payload));
    w.finish();
  });
}

ZMatrix read_matrix(const std::string& path) {
  ZMatrix m;
  // Corruption IS retryable here: a failed read attempt re-reads the file
  // from scratch, which recovers transient in-flight flips (at-rest
  // corruption keeps failing and surfaces to the re-materialization /
  // fallback layers above).
  io::io_retry_run("read_matrix", path, /*retry_corruption=*/true, [&] {
    Reader r(path);
    const Header h = read_header(r, kKindMatrix, 0);
    XGW_REQUIRE_KIND(product_matches(h.rows, h.cols,
                                     static_cast<std::int64_t>(sizeof(cplx)),
                                     h.payload_bytes),
                     "binio: payload size mismatch: '" + path +
                         "' at byte offset 16",
                     ErrorKind::kIoCorrupt);
    m = ZMatrix(h.rows, h.cols);
    r.get(m.data(), static_cast<std::size_t>(h.payload_bytes));
    r.verify_checksum();
  });
  return m;
}

void write_wavefunctions(const std::string& path, const Wavefunctions& wf) {
  io::io_retry_run("write_wavefunctions", path, /*retry_corruption=*/false,
                   [&] {
    Writer w(path);
    const std::int64_t coeff_bytes =
        static_cast<std::int64_t>(wf.coeff.size()) *
        static_cast<std::int64_t>(sizeof(cplx));
    const std::int64_t energy_bytes =
        static_cast<std::int64_t>(wf.energy.size()) *
        static_cast<std::int64_t>(sizeof(double));
    const Header h = make_header(kKindWavefunctions, wf.n_bands(), wf.n_pw(),
                                 coeff_bytes + energy_bytes);
    w.put(&h, sizeof(h));
    const std::int64_t nval = wf.n_valence;
    w.put(&nval, sizeof(nval));
    w.put(wf.coeff.data(), static_cast<std::size_t>(coeff_bytes));
    w.put(wf.energy.data(), static_cast<std::size_t>(energy_bytes));
    w.finish();
  });
}

Wavefunctions read_wavefunctions(const std::string& path) {
  Wavefunctions wf;
  io::io_retry_run("read_wavefunctions", path, /*retry_corruption=*/true,
                   [&] {
    Reader r(path);
    const Header h = read_header(r, kKindWavefunctions, sizeof(std::int64_t));
    std::int64_t nval = 0;
    r.get(&nval, sizeof(nval));
    XGW_REQUIRE_KIND(nval >= 0 && nval <= h.rows,
                     "binio: bad n_valence: '" + path + "' at byte offset 32",
                     ErrorKind::kIoCorrupt);
    // rows <= payload/8 (energy array alone needs rows*8 bytes), so the
    // products below cannot overflow once this holds.
    XGW_REQUIRE_KIND(
        h.rows <= h.payload_bytes / static_cast<std::int64_t>(sizeof(double)) &&
            product_matches(h.rows, h.cols,
                            static_cast<std::int64_t>(sizeof(cplx)),
                            h.payload_bytes -
                                h.rows *
                                    static_cast<std::int64_t>(sizeof(double))),
        "binio: payload size mismatch: '" + path + "' at byte offset 16",
        ErrorKind::kIoCorrupt);
    wf = Wavefunctions();
    wf.coeff = ZMatrix(h.rows, h.cols);
    wf.energy.resize(static_cast<std::size_t>(h.rows));
    wf.n_valence = nval;
    r.get(wf.coeff.data(),
          static_cast<std::size_t>(wf.coeff.size()) * sizeof(cplx));
    r.get(wf.energy.data(), wf.energy.size() * sizeof(double));
    r.verify_checksum();
  });
  return wf;
}

std::size_t matrix_file_bytes(idx rows, idx cols) {
  return sizeof(Header) + static_cast<std::size_t>(rows * cols) * sizeof(cplx) +
         sizeof(std::uint64_t);
}

std::size_t wavefunctions_file_bytes(idx n_bands, idx n_pw) {
  return sizeof(Header) + sizeof(std::int64_t) +
         static_cast<std::size_t>(n_bands * n_pw) * sizeof(cplx) +
         static_cast<std::size_t>(n_bands) * sizeof(double) +
         sizeof(std::uint64_t);
}

}  // namespace xgw

#pragma once

// Binary file formats — the WFN / epsmat analogue of BerkeleyGW's
// checkpoint files. The paper's "Tot. incl. I/O" rows exist because a
// production Sigma run reads the wavefunction and eps^{-1} files written by
// Parabands and Epsilon; xgw mirrors that staged workflow.
//
// Format: little-endian, fixed 32-byte header
//   magic "XGW1" | kind u32 | rows i64 | cols i64 | payload bytes i64
// followed by kind-specific metadata, the raw payload, and a trailing
// FNV-1a checksum of everything before it. Readers verify magic, kind and
// checksum and throw xgw::Error on any mismatch (corrupt restarts must
// fail loudly, not silently).

#include <string>

#include "la/matrix.h"
#include "mf/wavefunctions.h"

namespace xgw {

/// Writes a complex dense matrix (the "epsmat" format).
void write_matrix(const std::string& path, const ZMatrix& m);
ZMatrix read_matrix(const std::string& path);

/// Writes a band set: coefficients + energies + n_valence (the "WFN"
/// format).
void write_wavefunctions(const std::string& path, const Wavefunctions& wf);
Wavefunctions read_wavefunctions(const std::string& path);

/// Bytes a matrix/wavefunction file occupies (I/O model input).
std::size_t matrix_file_bytes(idx rows, idx cols);
std::size_t wavefunctions_file_bytes(idx n_bands, idx n_pw);

}  // namespace xgw

#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "obs/json.h"

namespace xgw::obs {

std::atomic<int> g_trace_detail{0};

void TraceRecorder::enable(int detail) {
  clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_ = std::chrono::steady_clock::now();
  }
  g_trace_detail.store(detail > 0 ? detail : detail_level::kKernel,
                       std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  g_trace_detail.store(0, std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : bufs_) {
    std::lock_guard<std::mutex> block(buf->mu);
    buf->events.clear();
  }
  virtual_events_.clear();
  process_names_.clear();
  track_names_.clear();
  next_vpid_ = 100;
  next_vseq_ = 0;
  orphan_flops_.store(0, std::memory_order_relaxed);
}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuf& TraceRecorder::local_buf() {
  // One buffer per (recorder, thread); the thread keeps a shared_ptr so the
  // buffer outlives either party.
  thread_local std::shared_ptr<ThreadBuf> t_buf;
  thread_local TraceRecorder* t_owner = nullptr;
  if (!t_buf || t_owner != this) {
    auto buf = std::make_shared<ThreadBuf>();
    {
      std::lock_guard<std::mutex> lock(mu_);
      buf->tid = next_tid_++;
      bufs_.push_back(buf);
    }
    t_buf = std::move(buf);
    t_owner = this;
  }
  return *t_buf;
}

void TraceRecorder::record_complete(const char* name, const char* cat,
                                    double ts_us, double dur_us,
                                    const TraceCounters& counters,
                                    std::string args) {
  ThreadBuf& buf = local_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  TraceEvent& e = buf.events.emplace_back();
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.pid = kRealPid;
  e.tid = buf.tid;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.seq = buf.next_seq++;
  e.counters = counters;
  e.args = std::move(args);
}

void TraceRecorder::record_instant(const char* name, const char* cat,
                                   std::string args) {
  ThreadBuf& buf = local_buf();
  const double ts = now_us();
  std::lock_guard<std::mutex> lock(buf.mu);
  TraceEvent& e = buf.events.emplace_back();
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.pid = kRealPid;
  e.tid = buf.tid;
  e.ts_us = ts;
  e.seq = buf.next_seq++;
  e.args = std::move(args);
}

std::uint32_t TraceRecorder::new_virtual_process(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t pid = next_vpid_++;
  process_names_.emplace_back(pid, name);
  return pid;
}

void TraceRecorder::name_virtual_track(std::uint32_t pid, std::uint32_t tid,
                                       const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  track_names_.push_back({{pid, tid}, name});
}

void TraceRecorder::virtual_complete(std::uint32_t pid, std::uint32_t tid,
                                     std::string name, const char* cat,
                                     double ts_s, double dur_s,
                                     std::string args) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent& e = virtual_events_.emplace_back();
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'X';
  e.pid = pid;
  e.tid = tid;
  e.ts_us = ts_s * 1e6;
  e.dur_us = dur_s * 1e6;
  e.seq = next_vseq_++;
  e.args = std::move(args);
}

void TraceRecorder::virtual_instant(std::uint32_t pid, std::uint32_t tid,
                                    std::string name, const char* cat,
                                    double ts_s, std::string args) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent& e = virtual_events_.emplace_back();
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'i';
  e.pid = pid;
  e.tid = tid;
  e.ts_us = ts_s * 1e6;
  e.seq = next_vseq_++;
  e.args = std::move(args);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : bufs_) {
      std::lock_guard<std::mutex> block(buf->mu);
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
    all.insert(all.end(), virtual_events_.begin(), virtual_events_.end());
  }
  // Each (pid, tid) track monotonic in ts; at equal ts the longer span
  // first so nested children follow their parent; remaining ties fall back
  // to the per-track sequence number, so the order is independent of how
  // concurrent writers interleaved their appends.
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.pid != b.pid) return a.pid < b.pid;
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              return a.seq < b.seq;
            });
  return all;
}

std::string TraceRecorder::chrome_trace_json() const {
  const std::vector<TraceEvent> events = snapshot();
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    os << (first ? "" : ",\n");
    first = false;
  };

  {
    // Registration order of names is racy when scheduler workers announce
    // their tracks concurrently; sort by id so the export is deterministic
    // at any worker count (stable: re-registrations keep arrival order, the
    // last one wins in Perfetto).
    std::lock_guard<std::mutex> lock(mu_);
    auto pnames = process_names_;
    std::stable_sort(pnames.begin(), pnames.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    auto tnames = track_names_;
    std::stable_sort(tnames.begin(), tnames.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kRealPid
       << ",\"tid\":0,\"args\":{\"name\":\"xgw (real time)\"}}";
    for (const auto& [pid, name] : pnames) {
      sep();
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"name\":" << json::quote(name) << "}}";
    }
    for (const auto& [key, name] : tnames) {
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
         << ",\"tid\":" << key.second
         << ",\"args\":{\"name\":" << json::quote(name) << "}}";
    }
  }

  char num[64];
  for (const TraceEvent& e : events) {
    sep();
    os << "{\"name\":" << json::quote(e.name) << ",\"cat\":"
       << json::quote(e.cat) << ",\"ph\":\"" << e.ph << "\",\"pid\":" << e.pid
       << ",\"tid\":" << e.tid;
    std::snprintf(num, sizeof(num), "%.3f", e.ts_us);
    os << ",\"ts\":" << num;
    if (e.ph == 'X') {
      std::snprintf(num, sizeof(num), "%.3f", e.dur_us);
      os << ",\"dur\":" << num;
    }
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{";
    bool afirst = true;
    auto arg_sep = [&] {
      os << (afirst ? "" : ",");
      afirst = false;
    };
    if (e.counters.flops != 0) {
      arg_sep();
      os << "\"flops\":" << e.counters.flops;
    }
    if (e.counters.bytes != 0) {
      arg_sep();
      os << "\"bytes\":" << e.counters.bytes;
    }
    if (e.counters.items != 0) {
      arg_sep();
      os << "\"items\":" << e.counters.items;
    }
    if (e.counters.peak_bytes != 0) {
      arg_sep();
      os << "\"peak_bytes\":" << e.counters.peak_bytes;
    }
    if (e.ph == 'X' && e.counters.flops != 0 && e.dur_us > 0.0) {
      std::snprintf(num, sizeof(num), "%.3f",
                    static_cast<double>(e.counters.flops) / (e.dur_us * 1e3));
      arg_sep();
      os << "\"gflops\":" << num;
    }
    if (!e.args.empty()) {
      arg_sep();
      os << e.args;
    }
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  const std::string doc = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write trace %s\n", path.c_str());
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  return true;
}

std::map<std::string, TraceRecorder::Aggregate> TraceRecorder::aggregate()
    const {
  std::map<std::string, Aggregate> agg;
  for (const TraceEvent& e : snapshot()) {
    if (e.ph != 'X') continue;
    Aggregate& a = agg[std::string(e.cat) + "/" + e.name];
    a.seconds += e.dur_us * 1e-6;
    a.calls += 1;
    a.flops += e.counters.flops;
    a.bytes += e.counters.bytes;
    a.items += e.counters.items;
    a.peak_bytes = std::max(a.peak_bytes, e.counters.peak_bytes);
  }
  return agg;
}

std::string TraceRecorder::breakdown() const {
  std::ostringstream os;
  os << std::left << std::setw(34) << "region" << std::right << std::setw(12)
     << "seconds" << std::setw(8) << "calls" << std::setw(12) << "GFLOP"
     << std::setw(10) << "GF/s" << '\n';
  for (const auto& [key, a] : aggregate()) {
    os << std::left << std::setw(34) << key << std::right << std::setw(12)
       << std::fixed << std::setprecision(6) << a.seconds << std::setw(8)
       << a.calls;
    os << std::setw(12) << std::setprecision(3)
       << static_cast<double>(a.flops) / 1e9;
    os << std::setw(10) << std::setprecision(2)
       << (a.seconds > 0.0 ? static_cast<double>(a.flops) / a.seconds / 1e9
                           : 0.0)
       << '\n';
  }
  const std::uint64_t orphans = orphan_flops();
  if (orphans != 0)
    os << std::left << std::setw(34) << "(unattributed)" << std::right
       << std::setw(12) << "-" << std::setw(8) << "-" << std::setw(12)
       << std::fixed << std::setprecision(3)
       << static_cast<double>(orphans) / 1e9 << std::setw(10) << "-" << '\n';
  return os.str();
}

std::uint64_t TraceRecorder::total_flops() const {
  std::uint64_t total = orphan_flops();
  for (const TraceEvent& e : snapshot()) total += e.counters.flops;
  return total;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* rec = new TraceRecorder();  // never destroyed
  return *rec;
}

}  // namespace xgw::obs

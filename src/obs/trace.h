#pragma once

// Structured trace recorder: the library-wide timeline behind the paper's
// per-kernel performance breakdowns (MTXEL / CHI_SUM / GPP ... of Tables
// 3-5 and Figs. 3-7).
//
// Two kinds of time coexist in one trace:
//
//  * REAL time — RAII spans (obs::Span) opened on live threads. Each
//    registered thread owns an append-only buffer (one uncontended mutex
//    per append), so the enabled hot path is O(100 ns); when the recorder
//    is disabled a span is a single relaxed atomic load and branch.
//
//  * VIRTUAL time — SimCluster emits one track per simulated rank with
//    explicit timestamps in modeled seconds: attempts, crashes, NaN-poison
//    validation failures, stragglers, redistributions. The fault-recovery
//    behaviour of runtime/simcluster becomes visually inspectable next to
//    the real kernel spans that produced the per-item compute times.
//
// Export formats:
//  * Chrome trace_event JSON ("X" complete + "i" instant + "M" metadata
//    events) — load in Perfetto (https://ui.perfetto.dev) or
//    chrome://tracing.
//  * An aggregated per-(category, name) text breakdown with FLOP counts
//    and achieved GFLOP/s — the successor of TimerRegistry::report().
//
// Detail levels gate span cost at the call site:
//   1 = stages (job phases, GW pipeline stages)
//   2 = kernels (MTXEL, CHI_SUM, GPP, eps inversion, ...)   [default]
//   3 = fine (per-GEMM dispatch spans: variant, shape, panel reuse)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xgw::obs {

namespace detail_level {
inline constexpr int kStage = 1;
inline constexpr int kKernel = 2;
inline constexpr int kFine = 3;
}  // namespace detail_level

// Global detail level; 0 = recorder off. Read on every span construction,
// so it lives outside the recorder object and is inlined into callers.
extern std::atomic<int> g_trace_detail;

/// Current detail level (0 when tracing is off). Relaxed: a span racing an
/// enable/disable may be dropped or kept, never torn.
inline int trace_detail() noexcept {
  return g_trace_detail.load(std::memory_order_relaxed);
}

inline bool trace_enabled() noexcept { return trace_detail() > 0; }

/// Counters attached to a completed span.
struct TraceCounters {
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
  std::uint64_t items = 0;
  /// Tracked-heap high-water mark observed while the span was open (bytes,
  /// from mem::MemTracker). Exact when the span raised the process peak;
  /// otherwise a lower bound. 0 = not sampled.
  std::uint64_t peak_bytes = 0;
};

/// One trace_event. `cat` must point at a string literal (never freed);
/// `args` is a pre-rendered fragment of JSON object members ("" or
/// `"k":v,"k2":v2`) appended into the event's args object.
struct TraceEvent {
  std::string name;
  const char* cat = "";
  char ph = 'X';  ///< 'X' complete, 'i' instant
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  /// Recorder-assigned sequence number, the final sort tie-break in
  /// snapshot(). Each track has one writer at a time (a thread owns its
  /// real-time buffer; a virtual rank track is written by whichever task
  /// simulates that rank, and those writes form a happens-before chain), so
  /// the per-track subsequence of seq values is increasing in program order
  /// no matter how tracks from concurrent scheduler workers interleave in
  /// the shared buffer. Exports are therefore deterministic at any worker
  /// count.
  std::uint64_t seq = 0;
  TraceCounters counters;
  std::string args;
};

class TraceRecorder {
 public:
  /// pid of the real-time (live thread) track group.
  static constexpr std::uint32_t kRealPid = 1;

  /// Resets the epoch and all buffered events, then opens recording at the
  /// given detail level. Not thread-safe against in-flight spans — call it
  /// from quiescent code (CLI startup, test SetUp).
  void enable(int detail = detail_level::kKernel);
  /// Stops recording; buffered events stay available for export.
  void disable();
  bool enabled() const { return trace_enabled(); }

  /// Drops all events and virtual tracks (keeps thread registrations).
  void clear();

  /// Microseconds since the recorder epoch.
  double now_us() const;

  /// Records a completed real-time span on the calling thread's track.
  void record_complete(const char* name, const char* cat, double ts_us,
                       double dur_us, const TraceCounters& counters,
                       std::string args);
  /// Records an instant event on the calling thread's track ("checkpoint
  /// written", "fault injected", ...).
  void record_instant(const char* name, const char* cat, std::string args);

  /// FLOPs attributed while no span was open (e.g. from worker threads of
  /// an OpenMP team whose master holds the span). Kept so that the sum of
  /// span FLOPs + orphans always equals the legacy global FlopCounter.
  void add_orphan_flops(std::uint64_t n) {
    orphan_flops_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t orphan_flops() const {
    return orphan_flops_.load(std::memory_order_relaxed);
  }

  // --- virtual-time tracks (SimCluster) ---------------------------------

  /// Allocates a new virtual process (one per simulated run) shown as its
  /// own track group. Thread-safe.
  std::uint32_t new_virtual_process(const std::string& name);
  /// Names one track (tid) inside a virtual process, e.g. "rank 3".
  void name_virtual_track(std::uint32_t pid, std::uint32_t tid,
                          const std::string& name);
  /// Complete event at explicit virtual time (seconds).
  void virtual_complete(std::uint32_t pid, std::uint32_t tid,
                        std::string name, const char* cat, double ts_s,
                        double dur_s, std::string args = "");
  /// Instant event at explicit virtual time (seconds).
  void virtual_instant(std::uint32_t pid, std::uint32_t tid, std::string name,
                       const char* cat, double ts_s, std::string args = "");

  // --- export -----------------------------------------------------------

  /// All buffered events, sorted by (pid, tid, ts, -dur, seq) so each track
  /// is monotonic, nested spans appear parent-first, and same-timestamp
  /// events keep their per-track program order regardless of how concurrent
  /// writers interleaved. The result is deterministic at any worker count.
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string chrome_trace_json() const;
  bool write_chrome_trace(const std::string& path) const;

  /// Per-(category/name) aggregate over complete events.
  struct Aggregate {
    double seconds = 0.0;
    long calls = 0;
    std::uint64_t flops = 0;
    std::uint64_t bytes = 0;
    std::uint64_t items = 0;
    std::uint64_t peak_bytes = 0;  ///< max over calls, not a sum
  };
  std::map<std::string, Aggregate> aggregate() const;

  /// Formatted aggregate breakdown (region, seconds, calls, GFLOP, GF/s) —
  /// subsumes TimerRegistry::report().
  std::string breakdown() const;

  /// Sum of FLOPs over every span plus orphan attributions: equals the
  /// legacy global FlopCounter total when both are wired (tested).
  std::uint64_t total_flops() const;

  /// Process-wide recorder.
  static TraceRecorder& global();

 private:
  struct ThreadBuf {
    std::mutex mu;
    std::uint32_t tid = 0;
    std::uint64_t next_seq = 0;
    std::vector<TraceEvent> events;
  };

  ThreadBuf& local_buf();

  mutable std::mutex mu_;  // registry of buffers + virtual state
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
  std::uint32_t next_tid_ = 1;

  std::vector<TraceEvent> virtual_events_;
  std::vector<std::pair<std::uint32_t, std::string>> process_names_;
  std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>, std::string>>
      track_names_;
  std::uint32_t next_vpid_ = 100;
  std::uint64_t next_vseq_ = 0;

  std::atomic<std::uint64_t> orphan_flops_{0};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// Shorthand for TraceRecorder::global().
inline TraceRecorder& recorder() { return TraceRecorder::global(); }

}  // namespace xgw::obs

#include "obs/span.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "mem/tracker.h"
#include "obs/json.h"

namespace xgw::obs {

namespace {
// Innermost open span of this thread. Attribution walks no further than
// this pointer, so each FLOP lands on exactly one span.
thread_local Span* t_current = nullptr;
}  // namespace

Span* Span::current() noexcept { return t_current; }

void Span::open() noexcept {
  active_ = true;
  parent_ = t_current;
  t_current = this;
  mem_hwm0_ = mem::tracker().peak_bytes();
  mem_cur0_ = mem::tracker().current_bytes();
  start_ = std::chrono::steady_clock::now();
  t0_us_ = recorder().now_us();
}

void Span::close() noexcept {
  if (reg_ != nullptr) {
    const double sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
    reg_->add(name_, sec);
    reg_ = nullptr;
  }
  if (!active_) return;
  active_ = false;
  assert(t_current == this && "obs::Span must be destroyed innermost-first");
  t_current = parent_;
  const double dur_us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
  // Peak tracked bytes while the span was open: when the process high-water
  // mark moved during the span, that new mark IS the within-span peak
  // (exact); otherwise report the larger of the endpoint residents, a
  // documented lower bound.
  const std::uint64_t hwm1 = mem::tracker().peak_bytes();
  counters_.peak_bytes =
      hwm1 > mem_hwm0_ ? hwm1
                       : std::max(mem_cur0_, mem::tracker().current_bytes());
  recorder().record_complete(name_, cat_, t0_us_, dur_us, counters_,
                             std::move(args_));
}

Span::Span(Span&& o) noexcept
    : name_(o.name_),
      cat_(o.cat_),
      reg_(o.reg_),
      active_(o.active_),
      parent_(o.parent_),
      start_(o.start_),
      t0_us_(o.t0_us_),
      mem_hwm0_(o.mem_hwm0_),
      mem_cur0_(o.mem_cur0_),
      counters_(o.counters_),
      args_(std::move(o.args_)) {
  o.reg_ = nullptr;
  if (active_) {
    assert(t_current == &o && "only the innermost open obs::Span may move");
    t_current = this;
    o.active_ = false;
  }
}

void Span::arg(const char* key, long long v) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  args_ += json::quote(key);
  args_ += ':';
  args_ += std::to_string(v);
}

void Span::arg(const char* key, double v) {
  if (!active_) return;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.8g", v);
  if (!args_.empty()) args_ += ',';
  args_ += json::quote(key);
  args_ += ':';
  args_ += buf;
}

void Span::arg(const char* key, const char* v) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  args_ += json::quote(key);
  args_ += ':';
  args_ += json::quote(v);
}

void attribute_flops(std::uint64_t n) noexcept {
  if (Span* s = t_current)
    s->add_flops(n);
  else if (trace_enabled())
    recorder().add_orphan_flops(n);
}

void attribute_bytes(std::uint64_t n) noexcept {
  if (Span* s = t_current) s->add_bytes(n);
}

}  // namespace xgw::obs

#include "obs/trace_check.h"

#include <map>
#include <vector>

#include "obs/json.h"

namespace xgw::obs {

std::string check_chrome_trace(std::string_view json_text) {
  json::Value doc;
  std::string err;
  if (!json::parse(json_text, doc, err)) return "invalid JSON: " + err;
  if (!doc.is_object()) return "top level is not an object";
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr) return "missing traceEvents";
  if (!events->is_array()) return "traceEvents is not an array";

  struct TrackState {
    double last_ts = -1e300;
    std::vector<std::string> open;  // B/E stack of names
  };
  std::map<std::pair<double, double>, TrackState> tracks;

  for (std::size_t i = 0; i < events->arr.size(); ++i) {
    const json::Value& e = events->arr[i];
    const std::string at = "event " + std::to_string(i) + ": ";
    if (!e.is_object()) return at + "not an object";
    const json::Value* name = e.find("name");
    if (name == nullptr || !name->is_string()) return at + "missing name";
    const json::Value* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str.size() != 1)
      return at + "missing ph";
    const char p = ph->str[0];
    if (p != 'X' && p != 'B' && p != 'E' && p != 'i' && p != 'I' && p != 'M')
      return at + "unknown ph '" + ph->str + "'";
    const json::Value* pid = e.find("pid");
    const json::Value* tid = e.find("tid");
    if (pid == nullptr || !pid->is_number()) return at + "missing pid";
    if (tid == nullptr || !tid->is_number()) return at + "missing tid";
    if (p == 'M') continue;  // metadata events carry no timestamp

    const json::Value* ts = e.find("ts");
    if (ts == nullptr || !ts->is_number()) return at + "missing ts";
    TrackState& track = tracks[{pid->number, tid->number}];
    if (ts->number < track.last_ts)
      return at + "non-monotonic ts on track (pid " +
             std::to_string(static_cast<long long>(pid->number)) + ", tid " +
             std::to_string(static_cast<long long>(tid->number)) + ")";
    track.last_ts = ts->number;

    if (p == 'X') {
      const json::Value* dur = e.find("dur");
      if (dur == nullptr || !dur->is_number())
        return at + "X event missing dur";
      if (dur->number < 0.0) return at + "negative dur";
    } else if (p == 'B') {
      track.open.push_back(name->str);
    } else if (p == 'E') {
      if (track.open.empty()) return at + "E event with no matching B";
      // Chrome allows an empty-name E; require a match when named.
      if (!name->str.empty() && track.open.back() != name->str)
        return at + "E event name '" + name->str + "' does not match open B '" +
               track.open.back() + "'";
      track.open.pop_back();
    }
  }
  for (const auto& [key, track] : tracks)
    if (!track.open.empty())
      return "unclosed B event '" + track.open.back() + "'";
  return "";
}

}  // namespace xgw::obs

#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/json.h"
#include "obs/trace.h"

namespace xgw::obs {

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string fnv1a_hex(std::string_view text) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a(text)));
  return buf;
}

std::string RunReportDoc::to_json() const {
  std::ostringstream os;
  char num[64];
  auto put_double = [&](double v) {
    std::snprintf(num, sizeof(num), "%.8g", v);
    os << num;
  };
  os << "{\n  \"job\": " << json::quote(job) << ",\n  \"config_hash\": "
     << json::quote(config_hash) << ",\n  \"total_seconds\": ";
  put_double(total_seconds);
  os << ",\n  \"total_flops\": " << total_flops;
  if (peak_gflops > 0.0) {
    os << ",\n  \"peak_gflops\": ";
    put_double(peak_gflops);
  }
  if (mem_bandwidth_gbs > 0.0) {
    os << ",\n  \"mem_bandwidth_gbs\": ";
    put_double(mem_bandwidth_gbs);
  }
  if (split_gemm_roofline_gflops > 0.0) {
    os << ",\n  \"split_gemm_roofline_gflops\": ";
    put_double(split_gemm_roofline_gflops);
  }
  os << ",\n  \"stages\": [\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageReport& s = stages[i];
    os << "    {\"name\": " << json::quote(s.name) << ", \"seconds\": ";
    put_double(s.seconds);
    os << ", \"calls\": " << s.calls << ", \"flops\": " << s.flops
       << ", \"bytes\": " << s.bytes << ", \"peak_bytes\": " << s.peak_bytes
       << ", \"gflops\": ";
    put_double(s.gflops);
    if (s.roofline_gflops > 0.0) {
      os << ", \"roofline_gflops\": ";
      put_double(s.roofline_gflops);
      os << ", \"pct_roofline\": ";
      put_double(100.0 * s.gflops / s.roofline_gflops);
    }
    os << "}" << (i + 1 < stages.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

bool RunReportDoc::write(const std::string& path) const {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write run report %s\n", path.c_str());
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  return true;
}

RunReportDoc build_run_report(const TraceRecorder& rec, std::string job,
                              std::string_view config_text, double peak_gflops,
                              double mem_bandwidth_gbs) {
  RunReportDoc doc;
  doc.job = std::move(job);
  doc.config_hash = fnv1a_hex(config_text);
  doc.peak_gflops = peak_gflops;
  doc.mem_bandwidth_gbs = mem_bandwidth_gbs;
  doc.total_flops = rec.total_flops();
  for (const auto& [name, a] : rec.aggregate()) {
    StageReport s;
    s.name = name;
    s.seconds = a.seconds;
    s.calls = a.calls;
    s.flops = a.flops;
    s.bytes = a.bytes;
    s.peak_bytes = a.peak_bytes;
    s.gflops =
        a.seconds > 0.0 ? static_cast<double>(a.flops) / a.seconds / 1e9 : 0.0;
    if (peak_gflops > 0.0 && mem_bandwidth_gbs > 0.0 && s.bytes > 0) {
      const double ai = static_cast<double>(s.flops) /
                        static_cast<double>(s.bytes);  // FLOP per byte
      s.roofline_gflops = std::min(peak_gflops, ai * mem_bandwidth_gbs);
    }
    doc.total_seconds += s.seconds;
    doc.stages.push_back(std::move(s));
  }
  // Largest time consumers first: the report reads like a profile.
  std::stable_sort(doc.stages.begin(), doc.stages.end(),
                   [](const StageReport& a, const StageReport& b) {
                     return a.seconds > b.seconds;
                   });
  return doc;
}

}  // namespace xgw::obs

#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

#include "mem/tracker.h"
#include "obs/json.h"

namespace xgw::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::string MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    " << json::quote(name) << ": "
       << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", g->value());
    os << (first ? "\n" : ",\n") << "    " << json::quote(name) << ": " << buf;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    " << json::quote(name)
       << ": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
       << ", \"buckets\": [";
    bool bfirst = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n == 0) continue;
      // Upper bound of bucket b is 2^(b+1) - 1; emit as a double-exact
      // value for b < 53 (always true for the quantities we observe).
      const double upper =
          b + 1 >= 64 ? 1.8446744073709552e19 : static_cast<double>(
              (std::uint64_t{1} << (b + 1)) - 1);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "[%.17g, %llu]", upper,
                    static_cast<unsigned long long>(n));
      os << (bfirst ? "" : ", ") << buf;
      bfirst = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

bool MetricsRegistry::write_json(const std::string& path) const {
  const std::string doc = snapshot_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write metrics snapshot %s\n",
                 path.c_str());
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  return true;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

void record_mem_gauges() {
  MetricsRegistry& reg = metrics();
  const mem::MemTracker& t = mem::tracker();
  reg.gauge("mem/current_bytes").set(static_cast<double>(t.current_bytes()));
  reg.gauge("mem/peak_bytes").set(static_cast<double>(t.peak_bytes()));
  reg.gauge("mem/alloc_calls").set(static_cast<double>(t.alloc_calls()));
  for (int i = 0; i < mem::kTagCount; ++i) {
    const auto tag = static_cast<mem::Tag>(i);
    const mem::TagStats s = t.tag(tag);
    if (s.alloc_calls == 0 && s.current_bytes == 0) continue;
    const std::string base = std::string("mem/") + mem::tag_name(tag);
    reg.gauge(base + "/current_bytes")
        .set(static_cast<double>(s.current_bytes));
    reg.gauge(base + "/peak_bytes").set(static_cast<double>(s.peak_bytes));
  }
}

}  // namespace xgw::obs

#pragma once

// Metrics registry: named counters, gauges, and log2-bucketed histograms
// with a lock-free hot path.
//
// Registration (name lookup) takes a mutex and is meant to happen once per
// call site — hold the returned reference (e.g. in a function-local static)
// and increment through it. Increments are single relaxed atomic RMWs, so
// they are safe from any thread, including inside OpenMP regions, and cost
// a few nanoseconds. Snapshots are taken with relaxed loads: values from
// concurrently-running increments may or may not be included, exactly the
// semantics of scraping a live process.
//
// This registry is the successor of the single global FlopCounter: kernel
// FLOP/byte totals flow in through obs::Span attribution (see span.h), so
// every kernel invocation carries its own achieved-rate numerator instead
// of one process-wide sum.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace xgw::obs {

/// Monotonically increasing counter.
class Counter {
 public:
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram over positive integer observations with power-of-two buckets:
/// bucket b counts observations in [2^b, 2^(b+1)). Good enough to see the
/// shape of e.g. GEMM inner dimensions or span durations in nanoseconds
/// without any configuration.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::uint64_t v) {
    int b = 0;
    while ((v >> (b + 1)) != 0 && b < kBuckets - 1) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

class MetricsRegistry {
 public:
  /// Returns the named instrument, creating it on first use. References
  /// stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Counter value by name (0 when absent) — test/report convenience.
  std::uint64_t counter_value(const std::string& name) const;

  /// Snapshot of every instrument as a JSON document:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {"count": N, "sum": S,
  ///                          "buckets": [[upper_bound, count], ...]}}}
  std::string snapshot_json() const;
  bool write_json(const std::string& path) const;

  /// Drops every instrument (single-threaded use only, like
  /// FlopCounter::reset — see the quiescence note in common/flops.h).
  void clear();

  /// Process-wide registry.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::global().
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

/// Publishes the mem::MemTracker state as gauges on the global registry:
/// mem/current_bytes, mem/peak_bytes, mem/alloc_calls, and per-tag
/// mem/<tag>/{current,peak}_bytes for tags that saw traffic. Call before
/// snapshotting metrics (the driver does, ahead of every metrics write).
void record_mem_gauges();

}  // namespace xgw::obs

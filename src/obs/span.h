#pragma once

// RAII trace spans with per-span FLOP/byte attribution.
//
// obs::Span supersedes TimerRegistry::Scope: it is move-safe, nests (each
// thread keeps an innermost-span pointer), and carries counters so every
// kernel invocation knows its own achieved GFLOP/s. The overload taking a
// TimerRegistry is the compatibility shim: it ALWAYS accumulates elapsed
// seconds into the registry (so GwCalculation::timers() reports are
// unchanged) and additionally records a trace event when the recorder is
// enabled.
//
// Cost model:
//  * recorder disabled, no registry: one relaxed atomic load + branch.
//  * recorder disabled, with registry: identical to the old Scope (two
//    steady_clock reads + map insert).
//  * recorder enabled: two clock reads + one uncontended mutex append,
//    O(100 ns) — bench_kernels_micro measures both paths.
//
// FLOP attribution: kernels call obs::attribute_flops(n) at the same sites
// where they feed the legacy FlopCounter. The count lands on the calling
// thread's innermost open span; with no span open it goes to the
// recorder's orphan counter (e.g. OpenMP worker threads whose team master
// holds the span). Every FLOP is attributed exactly once, so
//   sum over spans + orphans == legacy global FlopCounter total
// (exact, tested). When the recorder is off, attribution is a no-op.

#include <cstdint>
#include <string>

#include "common/timer.h"
#include "obs/trace.h"

namespace xgw::obs {

class Span {
 public:
  /// Pure trace span: records only when the recorder is enabled at
  /// `detail` or finer.
  explicit Span(const char* name, const char* cat = "kernel",
                int detail = detail_level::kKernel) noexcept
      : name_(name), cat_(cat) {
    if (trace_detail() >= detail) open();
  }

  /// Compatibility shim for TimerRegistry::Scope call sites: always
  /// accumulates wall seconds into `reg` under `name` (even with tracing
  /// off), and also traces when enabled.
  Span(TimerRegistry& reg, const char* name, const char* cat = "kernel",
       int detail = detail_level::kKernel) noexcept
      : name_(name), cat_(cat), reg_(&reg) {
    if (trace_detail() >= detail)
      open();
    else
      start_ = std::chrono::steady_clock::now();
  }

  ~Span() { close(); }

  /// Move transfers the pending record; the moved-from span records
  /// nothing. Only the innermost open span may be moved (debug-checked).
  Span(Span&& o) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span& operator=(Span&&) = delete;

  bool active() const { return active_; }

  void add_flops(std::uint64_t n) { counters_.flops += n; }
  void add_bytes(std::uint64_t n) { counters_.bytes += n; }
  void add_items(std::uint64_t n) { counters_.items += n; }

  /// Attach a key/value argument to the trace event (no-ops when the span
  /// is not recording).
  void arg(const char* key, long long v);
  void arg(const char* key, double v);
  void arg(const char* key, const char* v);
  void arg(const char* key, const std::string& v) { arg(key, v.c_str()); }

  /// The calling thread's innermost open span (nullptr when none).
  static Span* current() noexcept;

 private:
  void open() noexcept;
  void close() noexcept;

  const char* name_;
  const char* cat_;
  TimerRegistry* reg_ = nullptr;
  bool active_ = false;
  Span* parent_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
  double t0_us_ = 0.0;
  // mem::MemTracker samples at open (high-water mark and current bytes):
  // close() derives the span's peak_bytes counter from them.
  std::uint64_t mem_hwm0_ = 0;
  std::uint64_t mem_cur0_ = 0;
  TraceCounters counters_;
  std::string args_;
};

/// Attributes kernel FLOPs to the calling thread's innermost open span
/// (orphan counter when none). No-op while the recorder is disabled.
void attribute_flops(std::uint64_t n) noexcept;

/// Same for bytes moved (roofline denominators).
void attribute_bytes(std::uint64_t n) noexcept;

}  // namespace xgw::obs

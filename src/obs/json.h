#pragma once

// Minimal JSON utilities shared by every observability emitter (trace
// exporter, metrics snapshots, run reports) and the bench JsonRecords
// writer, so string escaping lives in exactly one place.
//
// The parser is deliberately small: it exists so xgw can VALIDATE its own
// machine-readable outputs (trace schema checks, metrics round-trips) in
// tests and in the `xgw_trace_check` CI tool without an external JSON
// dependency. It accepts strict RFC 8259 JSON; numbers are held as double.

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xgw::obs::json {

/// Escapes a string for embedding inside a JSON string literal: `"`, `\`,
/// and control characters (U+0000..U+001F) become escape sequences.
std::string escape(std::string_view s);

/// escape() wrapped in double quotes — a complete JSON string literal.
std::string quote(std::string_view s);

/// Parsed JSON value. Object member order is preserved (the trace checker
/// cares about none of it, but round-trip tests read better that way).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member with `key`, or nullptr (objects only).
  const Value* find(std::string_view key) const;
};

/// Parses `text`; on failure returns false and describes the problem (with
/// a byte offset) in `error`.
bool parse(std::string_view text, Value& out, std::string& error);

}  // namespace xgw::obs::json

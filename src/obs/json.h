#pragma once

// Minimal JSON utilities shared by every observability emitter (trace
// exporter, metrics snapshots, run reports) and the bench JsonRecords
// writer, so string escaping lives in exactly one place.
//
// The parser is deliberately small: it exists so xgw can VALIDATE its own
// machine-readable outputs (trace schema checks, metrics round-trips) in
// tests and in the `xgw_trace_check` CI tool without an external JSON
// dependency. It accepts strict RFC 8259 JSON; numbers are held as double.

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xgw::obs::json {

/// Escapes a string for embedding inside a JSON string literal: `"`, `\`,
/// and control characters (U+0000..U+001F) become escape sequences.
std::string escape(std::string_view s);

/// escape() wrapped in double quotes — a complete JSON string literal.
std::string quote(std::string_view s);

/// Parsed JSON value. Object member order is preserved (the trace checker
/// cares about none of it, but round-trip tests read better that way).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member with `key`, or nullptr (objects only).
  const Value* find(std::string_view key) const;

  // Builder factories, so emitters can assemble a Value tree and serialize
  // it with dump() instead of hand-rolling fprintf JSON (the drift between
  // hand-rolled writers and the parser is what these exist to kill).
  static Value make_null();
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array();
  static Value make_object();

  /// Appends a member to an object Value; returns a reference to the
  /// stored value so nested structures chain naturally.
  Value& set(std::string key, Value v);
  /// Appends an element to an array Value; returns the stored element.
  Value& push(Value v);
};

/// Shortest decimal representation of `v` that round-trips exactly through
/// strtod — THE number format of every xgw JSON emitter. Integral values up
/// to 2^53 print without a fractional part.
std::string format_number(double v);

/// Serializes a Value as strict RFC 8259 JSON. `indent` < 0 produces a
/// compact single line; otherwise nested levels are indented by `indent`
/// spaces. dump() and parse() round-trip: parse(dump(v)) == v with numbers
/// bit-exact (format_number guarantees it).
std::string dump(const Value& v, int indent = -1);

/// Parses `text`; on failure returns false and describes the problem (with
/// a byte offset) in `error`.
bool parse(std::string_view text, Value& out, std::string& error);

}  // namespace xgw::obs::json

// xgw_trace_check — validates a Chrome trace_event JSON file against the
// schema Perfetto / chrome://tracing expects (see obs/trace_check.h). CI
// runs it on every trace artifact; exit 0 = valid.
//
//   $ xgw_trace_check out.json

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/trace_check.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: xgw_trace_check <trace.json>\n");
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "xgw_trace_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string problem = xgw::obs::check_chrome_trace(buf.str());
  if (!problem.empty()) {
    std::fprintf(stderr, "xgw_trace_check: %s: %s\n", argv[1],
                 problem.c_str());
    return 1;
  }
  std::printf("xgw_trace_check: %s OK\n", argv[1]);
  return 0;
}

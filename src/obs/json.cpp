#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace xgw::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += escape(s);
  out += '"';
  return out;
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : obj)
    if (k == key) return &v;
  return nullptr;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    error = msg + " at byte " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool at_end() {
    skip_ws();
    return pos >= text.size();
  }

  bool expect(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("dangling escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (surrogate pairs are passed through unpaired —
          // good enough for a validator of our own ASCII-ish output).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Value& out, int depth) {
    if (depth > 128) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out.kind = Value::Kind::kObject;
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!expect(':')) return false;
        Value v;
        if (!parse_value(v, depth + 1)) return false;
        out.obj.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          skip_ws();
          continue;
        }
        return expect('}');
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = Value::Kind::kArray;
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Value v;
        if (!parse_value(v, depth + 1)) return false;
        out.arr.push_back(std::move(v));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return expect(']');
      }
    }
    if (c == '"') {
      out.kind = Value::Kind::kString;
      return parse_string(out.str);
    }
    if (text.compare(pos, 4, "true") == 0) {
      out.kind = Value::Kind::kBool;
      out.boolean = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out.kind = Value::Kind::kBool;
      out.boolean = false;
      pos += 5;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      out.kind = Value::Kind::kNull;
      pos += 4;
      return true;
    }
    // Number.
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    bool digits = false;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      ++pos;
      digits = true;
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (!digits) return fail("invalid token");
    out.kind = Value::Kind::kNumber;
    out.number = std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                             nullptr);
    if (!std::isfinite(out.number)) return fail("non-finite number");
    return true;
  }
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string& error) {
  Parser p;
  p.text = text;
  out = Value{};
  if (!p.parse_value(out, 0)) {
    error = p.error;
    return false;
  }
  if (!p.at_end()) {
    error = "trailing content at byte " + std::to_string(p.pos);
    return false;
  }
  error.clear();
  return true;
}

}  // namespace xgw::obs::json

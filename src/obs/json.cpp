#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace xgw::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += escape(s);
  out += '"';
  return out;
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : obj)
    if (k == key) return &v;
  return nullptr;
}

Value Value::make_null() { return Value{}; }

Value Value::make_bool(bool b) {
  Value v;
  v.kind = Value::Kind::kBool;
  v.boolean = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.kind = Value::Kind::kNumber;
  v.number = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind = Value::Kind::kString;
  v.str = std::move(s);
  return v;
}

Value Value::make_array() {
  Value v;
  v.kind = Value::Kind::kArray;
  return v;
}

Value Value::make_object() {
  Value v;
  v.kind = Value::Kind::kObject;
  return v;
}

Value& Value::set(std::string key, Value v) {
  obj.emplace_back(std::move(key), std::move(v));
  return obj.back().second;
}

Value& Value::push(Value v) {
  arr.push_back(std::move(v));
  return arr.back();
}

std::string format_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN
  char buf[40];
  // Integral values within the exact-double range print as integers.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest precision that round-trips exactly.
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  return buf;
}

namespace {

void dump_impl(const Value& v, int indent, int depth, std::string& out) {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent) *
                               static_cast<std::size_t>(depth + 1),
                           ' ')
             : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent) *
                               static_cast<std::size_t>(depth),
                           ' ')
             : std::string();
  switch (v.kind) {
    case Value::Kind::kNull: out += "null"; break;
    case Value::Kind::kBool: out += v.boolean ? "true" : "false"; break;
    case Value::Kind::kNumber: out += format_number(v.number); break;
    case Value::Kind::kString: out += quote(v.str); break;
    case Value::Kind::kArray: {
      if (v.arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < v.arr.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        dump_impl(v.arr[i], indent, depth + 1, out);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      if (v.obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < v.obj.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        out += quote(v.obj[i].first);
        out += pretty ? ": " : ":";
        dump_impl(v.obj[i].second, indent, depth + 1, out);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string dump(const Value& v, int indent) {
  std::string out;
  dump_impl(v, indent, 0, out);
  return out;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    error = msg + " at byte " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool at_end() {
    skip_ws();
    return pos >= text.size();
  }

  bool expect(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("dangling escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (surrogate pairs are passed through unpaired —
          // good enough for a validator of our own ASCII-ish output).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Value& out, int depth) {
    if (depth > 128) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out.kind = Value::Kind::kObject;
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!expect(':')) return false;
        Value v;
        if (!parse_value(v, depth + 1)) return false;
        out.obj.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          skip_ws();
          continue;
        }
        return expect('}');
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = Value::Kind::kArray;
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Value v;
        if (!parse_value(v, depth + 1)) return false;
        out.arr.push_back(std::move(v));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return expect(']');
      }
    }
    if (c == '"') {
      out.kind = Value::Kind::kString;
      return parse_string(out.str);
    }
    if (text.compare(pos, 4, "true") == 0) {
      out.kind = Value::Kind::kBool;
      out.boolean = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out.kind = Value::Kind::kBool;
      out.boolean = false;
      pos += 5;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      out.kind = Value::Kind::kNull;
      pos += 4;
      return true;
    }
    // Number.
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    bool digits = false;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      ++pos;
      digits = true;
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (!digits) return fail("invalid token");
    out.kind = Value::Kind::kNumber;
    out.number = std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                             nullptr);
    if (!std::isfinite(out.number)) return fail("non-finite number");
    return true;
  }
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string& error) {
  Parser p;
  p.text = text;
  out = Value{};
  if (!p.parse_value(out, 0)) {
    error = p.error;
    return false;
  }
  if (!p.at_end()) {
    error = "trailing content at byte " + std::to_string(p.pos);
    return false;
  }
  error.clear();
  return true;
}

}  // namespace xgw::obs::json

#pragma once

// Schema validation for xgw's Chrome trace_event output — used by tests
// (golden-file schema check) and by the `xgw_trace_check` CI tool that
// gates every trace artifact the pipeline uploads.
//
// Checks:
//  * the document is valid JSON with a "traceEvents" array;
//  * every event has string "name"/"ph", numeric "pid"/"tid"/"ts";
//  * "ph" is one of X, B, E, i, I, M; "X" events carry numeric "dur" >= 0;
//  * per (pid, tid) track, timestamps are monotonically non-decreasing;
//  * "B"/"E" duration events are properly nested (stack-matched) per
//    track, and none are left open at the end.

#include <string>
#include <string_view>

namespace xgw::obs {

/// Returns "" when `json_text` is a schema-valid Chrome trace, otherwise a
/// one-line description of the first problem found.
std::string check_chrome_trace(std::string_view json_text);

}  // namespace xgw::obs

#pragma once

// Machine-readable end-of-run report: where the time and FLOPs went, per
// stage, tied to the configuration that produced them — the artifact the
// paper's Tables 3-5 are condensed from, and what successive performance
// PRs diff against.
//
// A RunReportDoc is assembled from the TraceRecorder aggregate (so its
// stage rows are exactly the spans that executed) plus caller-provided
// identity (job name, config text). When the caller supplies machine
// numbers (peak GFLOP/s and memory bandwidth), each stage is annotated
// with its roofline ceiling from the measured FLOP/byte counters, and the
// driver additionally stamps the split-GEMM packing model ceiling from
// perf/progmodel.

#include <cstdint>
#include <string>
#include <vector>

namespace xgw::obs {

class TraceRecorder;

struct StageReport {
  std::string name;      ///< "category/span-name"
  double seconds = 0.0;
  long calls = 0;
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
  /// Tracked-allocation high-water mark observed while the stage's spans
  /// were open (max over calls, bytes; see TraceCounters::peak_bytes for
  /// exactness semantics). 0 = never sampled.
  std::uint64_t peak_bytes = 0;
  double gflops = 0.0;          ///< achieved rate (flops / seconds / 1e9)
  double roofline_gflops = 0.0; ///< min(peak, AI * bw); 0 = not annotated
};

struct RunReportDoc {
  std::string job;          ///< job / bench name
  std::string config_hash;  ///< FNV-1a of the configuration text (hex)
  std::vector<StageReport> stages;
  double total_seconds = 0.0;      ///< sum over stage rows (spans overlap!)
  std::uint64_t total_flops = 0;   ///< span FLOPs + orphans == legacy counter
  double peak_gflops = 0.0;        ///< machine peak, 0 = unknown
  double mem_bandwidth_gbs = 0.0;  ///< machine bandwidth, 0 = unknown
  /// Ceiling of the packed split-complex GEMM engine from
  /// perf/progmodel::split_gemm_roofline (stamped by the CLI driver which
  /// links perf/); 0 = absent.
  double split_gemm_roofline_gflops = 0.0;

  std::string to_json() const;
  bool write(const std::string& path) const;
};

/// 64-bit FNV-1a — the config hash. Stable across platforms.
std::uint64_t fnv1a(std::string_view text);
std::string fnv1a_hex(std::string_view text);

/// Builds the report from the recorder's current aggregate. When
/// `peak_gflops` and `mem_bandwidth_gbs` are both positive, stages with
/// byte counters get roofline annotations.
RunReportDoc build_run_report(const TraceRecorder& rec, std::string job,
                              std::string_view config_text,
                              double peak_gflops = 0.0,
                              double mem_bandwidth_gbs = 0.0);

}  // namespace xgw::obs

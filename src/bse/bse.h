#pragma once

// Bethe-Salpeter equation (Tamm-Dancoff, singlet, Gamma-only) on top of the
// GW machinery — the GW-BSE companion method the paper's introduction
// motivates ("the first-principles GW plus Bethe-Salpeter equation approach
// can comprehensively describe optical spectra and excitonic properties").
//
// In the (v, c) transition basis:
//   H^BSE_{vc,v'c'} = (E_c^QP - E_v^QP) delta_{vv'} delta_{cc'}
//                     + 2 K^x_{vc,v'c'} - K^d_{vc,v'c'}
//   K^x = sum_{G != 0} M_vc(G)^* v(G) M_v'c'(G)          (bare exchange)
//   K^d = sum_{GG'}  M_cc'(G)^* W_GG'(0) M_vv'(G')       (screened direct)
// with W = eps^{-1} v the static screened interaction (Hermitized). The
// eigenpairs {Omega_S, A^S} give exciton energies and amplitudes; the
// optical absorption follows from velocity-gauge dipoles.

#include <map>

#include "core/sigma.h"

namespace xgw {

struct BseOptions {
  idx n_val = 4;     ///< topmost valence bands in the transition space
  idx n_cond = 4;    ///< lowest conduction bands
  bool exchange = true;
  bool direct = true;
  /// Scissors shift (Ha) added to conduction QP energies; used when the
  /// caller does not supply per-band QP corrections.
  double scissors = 0.0;
  /// Per-band QP corrections E^QP - E^MF (global band index -> shift, Ha);
  /// bands present here override the scissors treatment — the full
  /// GW -> BSE pipeline feeds sigma_diag results in directly.
  std::map<idx, double> qp_corrections;
};

struct BseResult {
  std::vector<double> energy;  ///< exciton energies Omega_S, ascending (Ha)
  ZMatrix amplitude;           ///< column S = A^S over pairs (v * n_cond + c)
  idx n_val = 0, n_cond = 0;
  idx n_pairs() const { return n_val * n_cond; }

  /// Binding energy of the lowest exciton relative to the QP gap.
  double binding_energy(double qp_gap) const { return qp_gap - energy[0]; }
};

class BseCalculation {
 public:
  BseCalculation(GwCalculation& gw, const BseOptions& opt = {});

  /// The TDA BSE Hamiltonian in the pair basis (Hermitian).
  const ZMatrix& hamiltonian();

  /// Diagonalizes the BSE Hamiltonian.
  BseResult solve();

  /// Velocity-gauge dipole matrix element d_vc = <v|p|c> / (i w_cv), one
  /// cartesian 3-vector of complex numbers per pair.
  std::array<cplx, 3> dipole(idx v, idx c) const;

  /// Absorption spectra on [0, w_max]: excitonic (BSE) vs independent-QP.
  struct Spectrum {
    std::vector<double> omega;
    std::vector<double> eps2_bse;
    std::vector<double> eps2_ip;
  };
  Spectrum absorption(const BseResult& res, double w_max, idx n_omega,
                      double eta);

  /// Which transitions build exciton S: weights |A^S_vc|^2 sorted
  /// descending, plus the inverse participation ratio (effective number of
  /// contributing pairs) — the standard exciton character analysis.
  struct ExcitonCharacter {
    struct Contribution {
      idx v = 0, c = 0;     ///< global band indices
      double weight = 0.0;  ///< |A|^2 (weights sum to 1)
    };
    std::vector<Contribution> contributions;  ///< sorted descending
    double participation = 0.0;  ///< 1 / sum |A|^4, in [1, n_pairs]
  };
  ExcitonCharacter analyze(const BseResult& res, idx s) const;

  idx pair_index(idx iv, idx ic) const { return iv * opt_.n_cond + ic; }
  /// Global band indices of transition-space slot (iv, ic).
  idx val_band(idx iv) const;
  idx cond_band(idx ic) const;

 private:
  GwCalculation& gw_;
  BseOptions opt_;
  std::optional<ZMatrix> h_;
};

}  // namespace xgw

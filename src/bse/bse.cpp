#include "bse/bse.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "la/eig.h"
#include "mf/velocity.h"

namespace xgw {

BseCalculation::BseCalculation(GwCalculation& gw, const BseOptions& opt)
    : gw_(gw), opt_(opt) {
  XGW_REQUIRE(opt.n_val >= 1 && opt.n_val <= gw.n_valence(),
              "bse: bad valence window");
  XGW_REQUIRE(opt.n_cond >= 1 &&
                  opt.n_cond <= gw.n_bands() - gw.n_valence(),
              "bse: bad conduction window");
}

idx BseCalculation::val_band(idx iv) const {
  // iv = 0 is the DEEPEST included valence band so pair indices grow with
  // transition energy ordering conventions stay simple.
  return gw_.n_valence() - opt_.n_val + iv;
}

idx BseCalculation::cond_band(idx ic) const { return gw_.n_valence() + ic; }

const ZMatrix& BseCalculation::hamiltonian() {
  if (h_) return *h_;

  const Wavefunctions& wf = gw_.wavefunctions();
  const Mtxel& mt = gw_.mtxel();
  const CoulombPotential& v = gw_.coulomb();
  const idx ng = gw_.n_g();
  const idx nv = opt_.n_val, nc = opt_.n_cond;
  const idx np = nv * nc;

  ZMatrix h(np, np);

  // Diagonal: QP transition energies. Per-band corrections (when supplied)
  // override the scissors treatment.
  auto qp_shift = [&](idx band, double fallback) {
    const auto it = opt_.qp_corrections.find(band);
    return it != opt_.qp_corrections.end() ? it->second : fallback;
  };
  for (idx iv = 0; iv < nv; ++iv)
    for (idx ic = 0; ic < nc; ++ic) {
      const idx vb = val_band(iv), cb = cond_band(ic);
      const double de = (wf.energy[static_cast<std::size_t>(cb)] +
                         qp_shift(cb, opt_.scissors)) -
                        (wf.energy[static_cast<std::size_t>(vb)] +
                         qp_shift(vb, 0.0));
      h(pair_index(iv, ic), pair_index(iv, ic)) = de;
    }

  // Pair matrix elements M_vc(G) for all pairs (rows = pairs).
  ZMatrix m_pairs(np, ng);
  {
    std::vector<cplx> row(static_cast<std::size_t>(ng));
    for (idx iv = 0; iv < nv; ++iv)
      for (idx ic = 0; ic < nc; ++ic) {
        mt.compute_pair(val_band(iv), cond_band(ic), row.data());
        for (idx g = 0; g < ng; ++g)
          m_pairs(pair_index(iv, ic), g) = row[static_cast<std::size_t>(g)];
      }
  }

  if (opt_.exchange) {
    // 2 K^x = 2 M* diag(v, head excluded) M^T in the pair basis.
    for (idx p = 0; p < np; ++p)
      for (idx q = 0; q < np; ++q) {
        cplx acc{};
        const cplx* mp = m_pairs.row(p);
        const cplx* mq = m_pairs.row(q);
        for (idx g = 1; g < ng; ++g)
          acc += std::conj(mp[g]) * v(g) * mq[g];
        h(p, q) += 2.0 * acc;
      }
  }

  if (opt_.direct) {
    // Screened direct kernel with the Hermitized static W = eps^{-1} v.
    const ZMatrix& epsinv = gw_.epsinv0();
    ZMatrix w(ng, ng);
    for (idx g = 0; g < ng; ++g)
      for (idx gp = 0; gp < ng; ++gp) {
        const cplx wggp = epsinv(g, gp) * v(gp);
        const cplx wpgg = epsinv(gp, g) * v(g);
        w(g, gp) = 0.5 * (wggp + std::conj(wpgg));
      }

    // Intra-valence and intra-conduction pair matrix elements.
    ZMatrix m_vv(nv * nv, ng), m_cc(nc * nc, ng);
    {
      std::vector<cplx> row(static_cast<std::size_t>(ng));
      for (idx i = 0; i < nv; ++i)
        for (idx j = 0; j < nv; ++j) {
          mt.compute_pair(val_band(i), val_band(j), row.data());
          for (idx g = 0; g < ng; ++g)
            m_vv(i * nv + j, g) = row[static_cast<std::size_t>(g)];
        }
      for (idx i = 0; i < nc; ++i)
        for (idx j = 0; j < nc; ++j) {
          mt.compute_pair(cond_band(i), cond_band(j), row.data());
          for (idx g = 0; g < ng; ++g)
            m_cc(i * nc + j, g) = row[static_cast<std::size_t>(g)];
        }
    }

    // K^d_{vc,v'c'} = sum_GG' M_cc'(G)^* W_GG' M_vv'(G').
    std::vector<cplx> wm(static_cast<std::size_t>(ng));
    for (idx iv = 0; iv < nv; ++iv)
      for (idx ivp = 0; ivp < nv; ++ivp) {
        const cplx* mvv = m_vv.row(iv * nv + ivp);
        // wm(G) = sum_G' W_GG' M_vv'(G').
        for (idx g = 0; g < ng; ++g) {
          cplx acc{};
          const cplx* wrow = w.row(g);
          for (idx gp = 0; gp < ng; ++gp) acc += wrow[gp] * mvv[gp];
          wm[static_cast<std::size_t>(g)] = acc;
        }
        for (idx ic = 0; ic < nc; ++ic)
          for (idx icp = 0; icp < nc; ++icp) {
            const cplx* mcc = m_cc.row(ic * nc + icp);
            cplx acc{};
            for (idx g = 0; g < ng; ++g)
              acc += std::conj(mcc[g]) * wm[static_cast<std::size_t>(g)];
            h(pair_index(iv, ic), pair_index(ivp, icp)) -= acc;
          }
      }
  }

  // Hermitize residual asymmetry (finite-basis W wings).
  for (idx p = 0; p < np; ++p)
    for (idx q = p; q < np; ++q) {
      const cplx s = 0.5 * (h(p, q) + std::conj(h(q, p)));
      h(p, q) = s;
      h(q, p) = std::conj(s);
    }

  h_ = std::move(h);
  return *h_;
}

BseResult BseCalculation::solve() {
  const EigResult eig = heev(hamiltonian());
  BseResult res;
  res.energy = eig.values;
  res.amplitude = eig.vectors;
  res.n_val = opt_.n_val;
  res.n_cond = opt_.n_cond;
  return res;
}

BseCalculation::ExcitonCharacter BseCalculation::analyze(const BseResult& res,
                                                         idx s) const {
  XGW_REQUIRE(s >= 0 && s < res.n_pairs(), "analyze: exciton index range");
  ExcitonCharacter ec;
  double inv_pr = 0.0;
  for (idx iv = 0; iv < res.n_val; ++iv)
    for (idx ic = 0; ic < res.n_cond; ++ic) {
      const double w = std::norm(res.amplitude(pair_index(iv, ic), s));
      inv_pr += w * w;
      ec.contributions.push_back({val_band(iv), cond_band(ic), w});
    }
  std::sort(ec.contributions.begin(), ec.contributions.end(),
            [](const auto& a, const auto& b) { return a.weight > b.weight; });
  ec.participation = (inv_pr > 0.0) ? 1.0 / inv_pr : 0.0;
  return ec;
}

std::array<cplx, 3> BseCalculation::dipole(idx v, idx c) const {
  const Wavefunctions& wf = gw_.wavefunctions();
  const MomentumOperator mom(gw_.psi_sphere(),
                             gw_.hamiltonian().model().crystal().lattice());
  const double wcv = wf.energy[static_cast<std::size_t>(c)] -
                     wf.energy[static_cast<std::size_t>(v)];
  XGW_REQUIRE(wcv > 1e-10, "bse dipole: degenerate v/c pair");
  // d = <v|p|c> / (i w_cv), velocity gauge.
  std::array<cplx, 3> d = mom.pair(wf, v, c);
  const cplx inv_iw = 1.0 / (cplx{0.0, 1.0} * wcv);
  for (auto& comp : d) comp *= inv_iw;
  return d;
}

BseCalculation::Spectrum BseCalculation::absorption(const BseResult& res,
                                                    double w_max, idx n_omega,
                                                    double eta) {
  XGW_REQUIRE(n_omega >= 2 && w_max > 0.0 && eta > 0.0,
              "bse absorption: bad grid");
  const double omega_cell =
      gw_.hamiltonian().model().crystal().lattice().cell_volume();
  const double pref = 8.0 * kPi * kPi / omega_cell / 3.0;  // direction avg

  // Pair dipoles.
  const idx np = res.n_pairs();
  std::vector<std::array<cplx, 3>> d(static_cast<std::size_t>(np));
  for (idx iv = 0; iv < res.n_val; ++iv)
    for (idx ic = 0; ic < res.n_cond; ++ic)
      d[static_cast<std::size_t>(pair_index(iv, ic))] =
          dipole(val_band(iv), cond_band(ic));

  // Exciton dipoles D_S = sum_pairs A^S_p d_p, and IP transition data.
  const Wavefunctions& wf = gw_.wavefunctions();
  Spectrum sp;
  sp.omega.resize(static_cast<std::size_t>(n_omega));
  sp.eps2_bse.assign(static_cast<std::size_t>(n_omega), 0.0);
  sp.eps2_ip.assign(static_cast<std::size_t>(n_omega), 0.0);

  auto lorentz = [&](double w, double w0) {
    return (eta / kPi) / ((w - w0) * (w - w0) + eta * eta);
  };

  for (idx k = 0; k < n_omega; ++k)
    sp.omega[static_cast<std::size_t>(k)] =
        w_max * static_cast<double>(k) / static_cast<double>(n_omega - 1);

  for (idx s = 0; s < np; ++s) {
    cplx ds[3] = {};
    for (idx pidx = 0; pidx < np; ++pidx)
      for (int ax = 0; ax < 3; ++ax)
        ds[ax] += res.amplitude(pidx, s) *
                  d[static_cast<std::size_t>(pidx)][static_cast<std::size_t>(ax)];
    const double str =
        std::norm(ds[0]) + std::norm(ds[1]) + std::norm(ds[2]);
    const double ws = res.energy[static_cast<std::size_t>(s)];
    for (idx k = 0; k < n_omega; ++k)
      sp.eps2_bse[static_cast<std::size_t>(k)] +=
          pref * str * lorentz(sp.omega[static_cast<std::size_t>(k)], ws);
  }

  for (idx iv = 0; iv < res.n_val; ++iv)
    for (idx ic = 0; ic < res.n_cond; ++ic) {
      const idx pidx = pair_index(iv, ic);
      const auto& dd = d[static_cast<std::size_t>(pidx)];
      const double str = std::norm(dd[0]) + std::norm(dd[1]) + std::norm(dd[2]);
      const double w0 =
          wf.energy[static_cast<std::size_t>(cond_band(ic))] + opt_.scissors -
          wf.energy[static_cast<std::size_t>(val_band(iv))];
      for (idx k = 0; k < n_omega; ++k)
        sp.eps2_ip[static_cast<std::size_t>(k)] +=
            pref * str * lorentz(sp.omega[static_cast<std::size_t>(k)], w0);
    }
  return sp;
}

}  // namespace xgw

#include "perf/machines.h"

#include "common/error.h"

namespace xgw {

Machine frontier() {
  Machine m;
  m.name = "Frontier";
  m.kind = MachineKind::kFrontier;
  m.total_nodes = 9408;
  m.gpus_per_node = 8;          // 4 MI250X x 2 GCD
  m.peak_per_gpu = 23.9e12;     // FP64 per GCD (matrix-core peak)
  m.attainable_per_gpu = m.peak_per_gpu;
  m.hbm_bw_per_gpu = 1.6e12;    // HBM2e per GCD
  m.hbm_per_gpu = 64e9;         // 64 GB HBM2e per GCD
  m.fs_write_bw = 5e12;         // Orion scratch, order of magnitude
  m.net.alpha_s = 2.0e-6;       // Slingshot-11
  m.net.beta_s_per_byte = 1.0 / 25e9;
  return m;
}

Machine aurora() {
  Machine m;
  m.name = "Aurora";
  m.kind = MachineKind::kAurora;
  m.total_nodes = 10624;
  m.gpus_per_node = 12;          // 6 PVC x 2 tiles
  m.peak_per_gpu = 17.0e12;      // FP64 per tile, theoretical
  m.attainable_per_gpu = 11.4e12;// measured vector-MAD peak (Intel Advisor)
  m.hbm_bw_per_gpu = 1.6e12;
  m.hbm_per_gpu = 64e9;          // 64 GB HBM2e per PVC tile
  m.fs_write_bw = 4e12;
  m.net.alpha_s = 2.2e-6;        // Slingshot-11, dragonfly
  m.net.beta_s_per_byte = 1.0 / 25e9;
  return m;
}

Machine perlmutter() {
  Machine m;
  m.name = "Perlmutter";
  m.kind = MachineKind::kPerlmutter;
  m.total_nodes = 1792;
  m.gpus_per_node = 4;           // A100
  m.peak_per_gpu = 9.7e12;
  m.attainable_per_gpu = m.peak_per_gpu;
  m.hbm_bw_per_gpu = 1.5e12;
  m.hbm_per_gpu = 40e9;          // 40 GB HBM2 A100
  m.fs_write_bw = 3e12;
  m.net.alpha_s = 2.0e-6;
  m.net.beta_s_per_byte = 1.0 / 25e9;
  return m;
}

Machine machine_by_kind(MachineKind kind) {
  switch (kind) {
    case MachineKind::kFrontier: return frontier();
    case MachineKind::kAurora: return aurora();
    case MachineKind::kPerlmutter: return perlmutter();
  }
  XGW_REQUIRE(false, "machine_by_kind: unknown kind");
  return frontier();  // unreachable
}

Machine machine_by_name(const std::string& name) {
  if (name == "frontier") return frontier();
  if (name == "aurora") return aurora();
  if (name == "perlmutter") return perlmutter();
  XGW_REQUIRE(false, "machine_by_name: unknown machine '" + name +
                         "' (expected frontier | aurora | perlmutter)");
  return frontier();  // unreachable
}

}  // namespace xgw

#pragma once

// Calibration bridge between MEASURED scheduler runs and the alpha-beta
// machine-scale projector (perf/scaling.h). The projector's "what-if at
// 9,408 nodes" numbers used to be anchored on serial replay; with the
// task-graph runtime the same workload runs for real at 1..N workers, and
// the measured parallel efficiency at the widest worker count becomes the
// honest on-node efficiency anchor: it multiplies into the workload's
// eff_scale exactly like the paper's own fitted efficiency factors.

#include <span>

#include "perf/scaling.h"
#include "runtime/simcluster.h"

namespace xgw::perf {

/// One measured scheduler run of a fixed workload at a given worker count
/// (taken from SimCluster::RunReport's measured_* fields, or directly from
/// sched::ExecStats).
struct MeasuredRun {
  idx workers = 1;
  double wall_s = 0.0;  ///< real wall time of the run
  double busy_s = 0.0;  ///< summed task execution time across workers
};

/// busy / (workers * wall): 1.0 = perfect strong scaling on this host.
/// Clamped to (0, 1] — measurement jitter must not "improve" the model.
double parallel_efficiency(const MeasuredRun& run);

/// The calibration factor the projector should fold into
/// SigmaWorkload::eff_scale: the measured efficiency at the WIDEST worker
/// count in `runs` (the closest measured analogue of a full node).
/// Returns 1.0 (no correction) for an empty sample set.
double calibrated_eff_scale(std::span<const MeasuredRun> runs);

/// Convenience: workload with eff_scale multiplied by the measured-run
/// calibration — feed this to ScalingSimulator instead of the raw
/// workload for measurement-anchored projections.
SigmaWorkload calibrate_workload(SigmaWorkload w,
                                 std::span<const MeasuredRun> runs);

/// Extracts the calibration sample from a cluster run report.
MeasuredRun measured_run(const SimCluster::RunReport& report);

}  // namespace xgw::perf

#pragma once

// Programming-model efficiency factors (Sec. 7.1, Table 4 of the paper).
//
// The paper evaluates five models across the three GPU vendors. The factors
// below are TIME multipliers relative to each machine's best
// hardware-optimized implementation (CUDA / HIP / SYCL = 1.0), extracted
// from Table 4's 4-node column for the GPP kernel and from the GW-FF
// columns for the full-frequency path:
//   Perlmutter: OpenACC recovers >90% of CUDA; OMP(dagger) ~15-20% slower.
//   Frontier:   OpenACC gives 60-70% of HIP; the optimized OMP variant hits
//               a compiler pitfall (innermost strided loops parallelized
//               instead of serialized via `loop seq`) and is pathologically
//               slow — represented by a large factor.
//   Aurora:     OpenACC unsupported by Intel compilers (factor = inf);
//               optimized OMP ~2x SYCL; OMP(dagger) ~2.6x.
// These constants are *inputs from the paper*, used by the simulator to
// regenerate Table 4; the CPU analogue (our kernel variants) is measured
// separately in bench_table4_portability.

#include <limits>
#include <string>

#include "perf/machines.h"

namespace xgw {

enum class ProgModel { kCuda, kHip, kSycl, kOpenAcc, kOpenMpDagger, kOpenMpOpt };

std::string prog_model_name(ProgModel m);

/// Whether this (machine, model) pair exists in the paper's matrix.
bool prog_model_supported(MachineKind machine, ProgModel model);

enum class KernelClass { kGppDiag, kGwFullFreq };

/// Time multiplier >= 1 relative to the machine's best hardware-optimized
/// model; infinity when unsupported.
double prog_model_factor(MachineKind machine, ProgModel model,
                         KernelClass kernel);

/// The hardware-optimized model native to each machine.
ProgModel native_model(MachineKind machine);

/// Roofline entry for the CPU split-complex GEMM micro-kernel (the la/
/// kSplit / kParallel engine): attainable FLOP rate = min(peak, AI * BW)
/// with the arithmetic intensity computed from the engine's actual tile
/// sizes — the CPU analogue of the paper's shared-memory-staged GPU GEMM,
/// whose blocking exists precisely to push AI past the machine balance
/// point.
struct KernelRoofline {
  double arithmetic_intensity;  ///< FLOPs per byte of main-memory traffic
  double attainable_flops;      ///< min(peak, AI * bandwidth), FLOP/s
  bool compute_bound;           ///< AI above the machine balance point?
};

/// `peak_flops` in FLOP/s, `mem_bandwidth` in bytes/s. The traffic model
/// per (MC x NC) C tile and full K sweep: stream the A panel (16*MC*K),
/// the shared packed-B panel (16*K*NC, amortized over the row panels that
/// reuse it — `b_reuse` row panels share one packing), and read+write the
/// C tile once per K block (2 * 16*MC*NC * ceil(K/KC)).
KernelRoofline split_gemm_roofline(double peak_flops, double mem_bandwidth,
                                   idx k, idx b_reuse = 1);

}  // namespace xgw

#include "perf/progmodel.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "la/gemm.h"

namespace xgw {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::string prog_model_name(ProgModel m) {
  switch (m) {
    case ProgModel::kCuda: return "CUDA";
    case ProgModel::kHip: return "HIP";
    case ProgModel::kSycl: return "SYCL";
    case ProgModel::kOpenAcc: return "OACC";
    case ProgModel::kOpenMpDagger: return "OMP+";  // the paper's OMP-dagger
    case ProgModel::kOpenMpOpt: return "OMP";
  }
  return "?";
}

ProgModel native_model(MachineKind machine) {
  switch (machine) {
    case MachineKind::kFrontier: return ProgModel::kHip;
    case MachineKind::kAurora: return ProgModel::kSycl;
    case MachineKind::kPerlmutter: return ProgModel::kCuda;
  }
  XGW_REQUIRE(false, "native_model: unknown machine");
  return ProgModel::kCuda;
}

bool prog_model_supported(MachineKind machine, ProgModel model) {
  switch (model) {
    case ProgModel::kCuda: return machine == MachineKind::kPerlmutter;
    case ProgModel::kHip: return machine == MachineKind::kFrontier;
    case ProgModel::kSycl: return machine == MachineKind::kAurora;
    case ProgModel::kOpenAcc:
      return machine != MachineKind::kAurora;  // no Intel OpenACC support
    case ProgModel::kOpenMpDagger:
    case ProgModel::kOpenMpOpt:
      return true;
  }
  return false;
}

double prog_model_factor(MachineKind machine, ProgModel model,
                         KernelClass kernel) {
  if (!prog_model_supported(machine, model)) return kInf;
  // Table 4, 4-node column, normalized to the native model's time.
  if (kernel == KernelClass::kGppDiag) {
    switch (machine) {
      case MachineKind::kPerlmutter:
        switch (model) {
          case ProgModel::kCuda: return 1.0;
          case ProgModel::kOpenAcc: return 3197.3 / 2928.3;   // 1.092
          case ProgModel::kOpenMpOpt: return 3268.7 / 2928.3; // 1.116
          case ProgModel::kOpenMpDagger: return 4186.3 / 2928.3;
          default: return kInf;
        }
      case MachineKind::kFrontier:
        switch (model) {
          case ProgModel::kHip: return 1.0;
          case ProgModel::kOpenAcc: return 2111.9 / 1382.5;   // 1.528
          case ProgModel::kOpenMpDagger: return 2562.1 / 1382.5;
          case ProgModel::kOpenMpOpt: return 8.0;  // compiler pitfall (loop seq)
          default: return kInf;
        }
      case MachineKind::kAurora:
        switch (model) {
          case ProgModel::kSycl: return 1.0;
          case ProgModel::kOpenMpOpt: return 2877.2 / 1416.0; // 2.032
          case ProgModel::kOpenMpDagger: return 3621.1 / 1416.0;
          default: return kInf;
        }
    }
  } else {  // GW-FF (offloaded library calls dominate; open models only)
    switch (machine) {
      case MachineKind::kPerlmutter:
        return model == ProgModel::kOpenAcc ? 1.0
               : model == ProgModel::kOpenMpDagger ? 528.2 / 528.2
                                                   : 1.0;
      case MachineKind::kFrontier:
        return 1.0;  // OACC 354.4 s baseline
      case MachineKind::kAurora:
        return model == ProgModel::kOpenMpOpt ? 364.7 / 364.7 : 1.0;
    }
  }
  return kInf;
}

KernelRoofline split_gemm_roofline(double peak_flops, double mem_bandwidth,
                                   idx k, idx b_reuse) {
  XGW_REQUIRE(peak_flops > 0.0 && mem_bandwidth > 0.0 && k > 0,
              "split_gemm_roofline: peak, bandwidth, k must be positive");
  XGW_REQUIRE(b_reuse >= 1, "split_gemm_roofline: b_reuse must be >= 1");
  const GemmTiling t = gemm_tiling();
  const double mc = static_cast<double>(t.mc);
  const double nc = static_cast<double>(t.nc);
  const double kd = static_cast<double>(k);
  const double k_blocks = std::ceil(kd / static_cast<double>(t.kc));

  // FLOPs for one (MC x NC) C tile over the full K sweep.
  const double flops = 8.0 * mc * nc * kd;
  // Main-memory traffic (bytes, 16 per complex double): A panel streamed,
  // packed-B panel amortized over b_reuse row panels, C tile read+written
  // once per K block (the split engine's l0-outer accumulation).
  const double bytes = 16.0 * (mc * kd + kd * nc / static_cast<double>(b_reuse) +
                               2.0 * mc * nc * k_blocks);

  KernelRoofline r;
  r.arithmetic_intensity = flops / bytes;
  r.attainable_flops =
      std::min(peak_flops, r.arithmetic_intensity * mem_bandwidth);
  r.compute_bound = r.arithmetic_intensity * mem_bandwidth >= peak_flops;
  return r;
}

}  // namespace xgw

#include "perf/scaling.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/flops.h"

namespace xgw {

double SigmaWorkload::kernel_flops() const {
  if (offdiag)
    return flop_model::gpp_offdiag_zgemm(n_sigma, n_b, n_g, n_e);
  return flop_model::gpp_diag(alpha, n_sigma, n_b, n_g, n_e);
}

ScalingSimulator::ScalingSimulator(Machine machine)
    : machine_(std::move(machine)) {
  // Kernel efficiencies (fraction of per-GPU peak / attainable peak),
  // calibrated once against the paper's own measurements:
  //  * Frontier diag 0.33 (Table 4: Si510 HIP @4 nodes; Table 5: 31% full
  //    machine), off-diag 0.625 (Table 5: 59.45% incl. comm losses).
  //  * Aurora (vs attainable) diag 0.50 small-scale -> 39% at 87.5% machine,
  //    off-diag 0.565.
  //  * Perlmutter diag 0.38 (CUDA, A100 roofline), off-diag 0.55.
  switch (machine_.kind) {
    case MachineKind::kFrontier:
      eff_gpp_diag = 0.330;
      eff_gpp_offdiag = 0.625;
      eff_ff = 0.45;
      break;
    case MachineKind::kAurora:
      eff_gpp_diag = 0.50;
      eff_gpp_offdiag = 0.565;
      eff_ff = 0.40;
      break;
    case MachineKind::kPerlmutter:
      // EFFECTIVE value: Table 4's Si510 CUDA times imply
      // alpha_Pm * eff = 83.5 * 0.745; the paper does not report
      // alpha_Perlmutter, so the unknown prefactor is folded in here.
      eff_gpp_diag = 0.745;
      eff_gpp_offdiag = 0.55;
      eff_ff = 0.42;
      break;
  }
}

double ScalingSimulator::compute_seconds(double flops, idx nodes, double eff,
                                         ProgModel pm, KernelClass kc) const {
  const double gpus = static_cast<double>(machine_.gpus(nodes));
  const double per_gpu = machine_.attainable_per_gpu;
  const double factor = prog_model_factor(machine_.kind, pm, kc);
  return flops / (gpus * per_gpu * eff) * factor;
}

double ScalingSimulator::imbalance_factor(const SigmaWorkload& w,
                                          idx nodes) const {
  // Two-level decomposition: pools over Sigma elements, G' columns over the
  // ranks of each pool. The production code picks the pool count that
  // minimizes the slowest-rank work; quantization of both levels at the
  // optimal choice is the physical origin of the strong-scaling tail.
  const idx gpus = machine_.gpus(nodes);
  const double ideal = static_cast<double>(w.n_sigma) *
                       static_cast<double>(w.n_g) /
                       static_cast<double>(gpus);

  double best = 1e300;
  const idx pool_max = std::min(w.n_sigma, gpus);
  for (idx pools = 1; pools <= pool_max; ++pools) {
    const idx rpp = gpus / pools;
    if (rpp < 1) break;
    const idx sig_per_pool = (w.n_sigma + pools - 1) / pools;
    const idx cols_per_rank = (w.n_g + rpp - 1) / rpp;
    const double slowest = static_cast<double>(sig_per_pool) *
                           static_cast<double>(cols_per_rank);
    best = std::min(best, slowest);
  }
  return std::max(1.0, best / ideal);
}

double ScalingSimulator::comm_seconds(const SigmaWorkload& w, idx nodes) const {
  const idx gpus = machine_.gpus(nodes);
  const idx pools = std::max<idx>(1, std::min(w.n_sigma, gpus));
  const idx rpp = std::max<idx>(1, gpus / pools);
  const idx ngpsi = w.n_g_psi > 0 ? w.n_g_psi
                                  : static_cast<idx>(2.7 * static_cast<double>(w.n_g));

  // Each rank gathers its G'-slice of the M matrices (ring allgather within
  // the pool), then the pool reduces its partial Sigma elements.
  const double m_bytes_per_rank =
      16.0 * static_cast<double>(w.n_b) * static_cast<double>(w.n_g) /
      static_cast<double>(rpp);
  const double sigma_bytes =
      16.0 * static_cast<double>((w.n_sigma + pools - 1) / pools) *
      static_cast<double>(w.n_e) * (w.offdiag ? static_cast<double>(w.n_sigma) : 1.0);

  // Wavefunction distribution at startup (scattered read + bcast tree).
  const double wf_bytes = 16.0 * static_cast<double>(w.n_b) *
                          static_cast<double>(ngpsi) /
                          static_cast<double>(gpus);

  return machine_.net.allgather(m_bytes_per_rank, rpp) +
         machine_.net.allreduce(sigma_bytes, rpp) +
         machine_.net.bcast(wf_bytes, std::min<idx>(gpus, 64));
}

PerfPoint ScalingSimulator::sigma_kernel(const SigmaWorkload& w, idx nodes,
                                         ProgModel pm) const {
  XGW_REQUIRE(nodes >= 1 && nodes <= machine_.total_nodes,
              "sigma_kernel: node count out of machine range");
  const double flops = w.kernel_flops();
  const double eff =
      (w.offdiag ? eff_gpp_offdiag : eff_gpp_diag) * w.eff_scale;
  const double t_compute = compute_seconds(flops, nodes, eff, pm,
                                           KernelClass::kGppDiag) *
                           imbalance_factor(w, nodes);
  const double t = t_compute + comm_seconds(w, nodes);

  PerfPoint p;
  p.nodes = nodes;
  p.seconds = t;
  p.pflops = flops / t / 1e15;
  const double base = static_cast<double>(machine_.gpus(nodes)) *
                      machine_.attainable_per_gpu;
  p.pct_peak = 100.0 * (flops / t) / base;
  return p;
}

PerfPoint ScalingSimulator::sigma_total_excl_io(const SigmaWorkload& w,
                                                idx nodes, ProgModel pm) const {
  PerfPoint p = sigma_kernel(w, nodes, pm);
  p.seconds *= (1.0 + overhead_fraction);
  p.pflops = w.kernel_flops() / p.seconds / 1e15;
  const double base = static_cast<double>(machine_.gpus(nodes)) *
                      machine_.attainable_per_gpu;
  p.pct_peak = 100.0 * (w.kernel_flops() / p.seconds) / base;
  return p;
}

double ScalingSimulator::io_seconds(const SigmaWorkload& w, idx nodes) const {
  const idx ngpsi = w.n_g_psi > 0 ? w.n_g_psi
                                  : static_cast<idx>(2.7 * static_cast<double>(w.n_g));
  const idx gpus = machine_.gpus(nodes);
  const idx pools = std::max<idx>(1, std::min(w.n_sigma, gpus));
  // Wavefunction file read once + eps^{-1} matrix read per pool (the
  // replicated-read pattern of the Sigma module) + sigma output write.
  const double wf_bytes = 16.0 * static_cast<double>(w.n_b) *
                          static_cast<double>(ngpsi);
  const double eps_bytes = 16.0 * static_cast<double>(w.n_g) *
                           static_cast<double>(w.n_g) *
                           static_cast<double>(pools);
  const double out_bytes = 16.0 * static_cast<double>(w.n_sigma) *
                           static_cast<double>(w.n_e) *
                           (w.offdiag ? static_cast<double>(w.n_sigma) : 1.0);
  // io_contention models metadata and striping contention at scale
  // (calibrated to the Si998-b Tot-incl-I/O row of Table 5).
  return (wf_bytes + eps_bytes + out_bytes) /
         (machine_.fs_write_bw * io_contention);
}

PerfPoint ScalingSimulator::sigma_total_incl_io(const SigmaWorkload& w,
                                                idx nodes, ProgModel pm) const {
  PerfPoint p = sigma_total_excl_io(w, nodes, pm);
  p.seconds += io_seconds(w, nodes);
  p.pflops = w.kernel_flops() / p.seconds / 1e15;
  const double base = static_cast<double>(machine_.gpus(nodes)) *
                      machine_.attainable_per_gpu;
  p.pct_peak = 100.0 * (w.kernel_flops() / p.seconds) / base;
  return p;
}

std::vector<PerfPoint> ScalingSimulator::strong_scaling(
    const SigmaWorkload& w, const std::vector<idx>& nodes, ProgModel pm) const {
  std::vector<PerfPoint> out;
  out.reserve(nodes.size());
  for (idx n : nodes) out.push_back(sigma_kernel(w, n, pm));
  return out;
}

std::vector<PerfPoint> ScalingSimulator::weak_scaling(
    const SigmaWorkload& base, const std::vector<idx>& nodes,
    ProgModel pm) const {
  XGW_REQUIRE(!nodes.empty(), "weak_scaling: empty node list");
  std::vector<PerfPoint> out;
  out.reserve(nodes.size());
  const idx n0 = nodes.front();
  for (idx n : nodes) {
    SigmaWorkload w = base;
    w.n_sigma = base.n_sigma * (n / n0);  // problem scaled by Eq. 7/8
    out.push_back(sigma_kernel(w, n, pm));
  }
  return out;
}

ScalingSimulator::FfEpsilonTimes ScalingSimulator::ff_epsilon_weak(
    const SigmaWorkload& base, idx base_nodes, idx nodes, idx n_freq,
    double subspace_frac, ProgModel pm) const {
  // System size N grows with nodes so CHI-0 work/node is constant. All of
  // N_v, N_c, N_G grow LINEARLY with atom count (Table 1), so the chi work
  // ~ N_v N_c N_G^2 ~ N^4 and weak scaling requires N ~ nodes^{1/4}.
  const double scale =
      std::pow(static_cast<double>(nodes) / static_cast<double>(base_nodes),
               0.25);
  const double nv = static_cast<double>(base.n_b) * 0.1 * scale;
  const double nc = static_cast<double>(base.n_b) * 0.9 * scale;
  const double ng = static_cast<double>(base.n_g) * scale;
  const double neig = subspace_frac * ng;
  const double gpus = static_cast<double>(machine_.gpus(nodes));
  const double rate =
      gpus * machine_.attainable_per_gpu * eff_ff *
      (1.0 / prog_model_factor(machine_.kind, pm, KernelClass::kGwFullFreq));

  FfEpsilonTimes t{};
  // Compute-bound GEMM kernels: near-ideal weak scaling, plus the pool
  // allreduce that makes weak scaling "less favorable" (Sec. 7.2).
  const double chi0_flops = 8.0 * nv * nc * ng * ng;
  t.chi0 = chi0_flops / rate +
           machine_.net.allreduce(16.0 * ng * ng / gpus * 64.0,
                                  machine_.gpus(nodes));
  const double chifreq_flops = 8.0 * static_cast<double>(n_freq) * nv * nc *
                               neig * neig;
  t.chi_freq = chifreq_flops / rate +
               static_cast<double>(n_freq) *
                   machine_.net.allreduce(16.0 * neig * neig / gpus * 64.0,
                                          machine_.gpus(nodes));
  const double transf_flops = 8.0 * nv * nc * ng * neig;
  t.transf = transf_flops / rate;

  // Lower-scaling kernels (Fig. 3): MTXEL is FFT/bandwidth bound with
  // all-to-all transpose traffic growing ~ P^0.55; Diag is an O(N_G^3)
  // eigendecomposition with decaying parallel efficiency ~ P^0.6.
  // Exponents fitted to the shape of Fig. 3 (documented).
  const double pratio = static_cast<double>(nodes) /
                        static_cast<double>(base_nodes);
  const double mtxel_base =
      (nv * nc * ng * std::log2(std::max(2.0, ng)) * 40.0) /
      (gpus * machine_.hbm_bw_per_gpu / 16.0);
  t.mtxel = mtxel_base * std::pow(pratio, 0.55);
  const double diag_base = 28.0 * ng * ng * ng / rate;
  t.diag = diag_base * std::pow(pratio, 0.60);
  return t;
}

PerfPoint ScalingSimulator::ff_sigma(const SigmaWorkload& w, idx nodes,
                                     idx n_freq, double subspace_frac,
                                     ProgModel pm) const {
  // Subspace-contracted FF Sigma: the G/G' sums run in the N_Eig basis
  // (Sec. 5.2), n_freq quadrature points.
  const double neig = subspace_frac * static_cast<double>(w.n_g);
  const double flops = 8.0 * static_cast<double>(w.n_sigma) *
                       static_cast<double>(w.n_b) * neig * neig *
                       static_cast<double>(n_freq) / 50.0;
  const double t = compute_seconds(flops, nodes, eff_ff, pm,
                                   KernelClass::kGwFullFreq) *
                       imbalance_factor(w, nodes) +
                   comm_seconds(w, nodes);
  PerfPoint p;
  p.nodes = nodes;
  p.seconds = t;
  p.pflops = flops / t / 1e15;
  const double base = static_cast<double>(machine_.gpus(nodes)) *
                      machine_.attainable_per_gpu;
  p.pct_peak = 100.0 * (flops / t) / base;
  return p;
}

std::vector<SigmaWorkload> paper_workloads(MachineKind kind) {
  const double alpha = (kind == MachineKind::kAurora) ? 94.27 : 83.50;
  std::vector<SigmaWorkload> w;
  // Table 2 systems. N_Sigma / N_E for the Table 5 rows are inferred from
  // the paper's reported times and throughputs via Eqs. 7 and 8 (the
  // off-diag rows pin N_Sigma = 512 for Si998 exactly).
  w.push_back({"Si214", 128, 5500, 11075, 31463, 3, false, alpha, 1.0});
  w.push_back({"Si510", 128, 15000, 26529, 74653, 3, false, alpha, 1.0});
  w.push_back({"Si998", 512, 28000, 51627, 145837, 3, false, alpha, 1.0});
  w.push_back({"Si2742", 588, 80695, 141505, 363477, 3, false, alpha, 0.94});
  w.push_back({"Si2742p", 588, 15840, 141505, 363477, 3, false, alpha, 0.81});
  w.push_back(
      {"LiH998-GWPT", 1024, 3100, 52923, 81313, 60, false, alpha, 0.82});
  w.push_back({"LiH17574", 512, 49920, 362733, 506991, 3, false, alpha, 1.0});
  w.push_back({"BN867", 1177, 49920, 84585, 439769, 3, false, alpha, 0.97});
  // Fig. 7 off-diagonal configurations.
  w.push_back({"Si998-a", 512, 28224, 51627, 145837, 200, true, alpha, 1.0});
  w.push_back({"Si998-b", 512, 28224, 51627, 145837, 512, true, alpha, 1.0});
  w.push_back({"Si998-c", 512, 28800, 51627, 145837, 200, true, alpha, 1.0});
  w.push_back({"LiH998-GWPT-offdiag", 512, 3100, 52923, 81313, 288, true,
               alpha, 0.62});
  return w;
}

}  // namespace xgw

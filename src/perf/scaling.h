#pragma once

// Scaling and throughput simulator — regenerates the paper's machine-scale
// results (Table 4, Table 5, Figs. 3-7) from:
//  * exact FLOP counts (Eqs. 7 and 8),
//  * published hardware parameters (perf/machines.h),
//  * an alpha-beta network model plus the exact work-quantization
//    (load-imbalance) effects of the pool/block decomposition,
//  * kernel efficiencies and programming-model factors taken from the
//    paper's own measurements (documented in perf/progmodel.h and below).
//
// What is modeled vs measured is spelled out in EXPERIMENTS.md: everything
// machine-scale is a model (we have no exascale machine); all algorithmic
// ratios feeding the model (kernel variant ordering, off-diag/diag
// throughput gain, subspace speedups) are measured on the real CPU kernels
// in this repository.

#include <vector>

#include "perf/machines.h"
#include "perf/progmodel.h"
#include "runtime/dist.h"

namespace xgw {

/// Sigma-GPP workload descriptor (Table 2 scale parameters).
struct SigmaWorkload {
  std::string system;   ///< label, e.g. "Si998-a"
  idx n_sigma = 0;      ///< number of external bands (diag) — off-diag does n_sigma^2 elements
  idx n_b = 0;
  idx n_g = 0;
  idx n_g_psi = 0;      ///< wavefunction sphere (I/O sizing); 0 -> 2.7 * n_g
  idx n_e = 0;
  bool offdiag = false;
  double alpha = 83.50; ///< Eq. 7 prefactor (architecture dependent)
  /// Workload-specific efficiency multiplier (1.0 for the standard GPP
  /// kernels). < 1 for rows whose measured efficiency is reduced by
  /// unskippable extra work: GWPT's dM prep (LiH998 rows) and the
  /// full-machine network contention of the Si2742' Aurora run — values
  /// fitted once to Table 5 and documented in EXPERIMENTS.md.
  double eff_scale = 1.0;

  double kernel_flops() const;  ///< Eq. 7 (diag) or Eq. 8 (off-diag ZGEMM)
};

struct PerfPoint {
  idx nodes = 0;
  double seconds = 0.0;
  double pflops = 0.0;    ///< sustained PFLOP/s
  double pct_peak = 0.0;  ///< vs FULL-machine aggregate (Table 5 convention)
};

class ScalingSimulator {
 public:
  explicit ScalingSimulator(Machine machine);

  const Machine& machine() const { return machine_; }

  /// Kernel-only time/throughput at `nodes` nodes.
  PerfPoint sigma_kernel(const SigmaWorkload& w, idx nodes,
                         ProgModel pm) const;

  /// Whole-application time excluding I/O (kernel + MTXEL/epsilon overhead).
  PerfPoint sigma_total_excl_io(const SigmaWorkload& w, idx nodes,
                                ProgModel pm) const;

  /// Including I/O (wavefunction read + epsmat read per pool + sigma write).
  PerfPoint sigma_total_incl_io(const SigmaWorkload& w, idx nodes,
                                ProgModel pm) const;

  std::vector<PerfPoint> strong_scaling(const SigmaWorkload& w,
                                        const std::vector<idx>& nodes,
                                        ProgModel pm) const;

  /// Weak scaling: n_sigma grows proportionally with nodes (the paper's
  /// Fig. 5 protocol — problem size scaled by Eqs. 7/8).
  std::vector<PerfPoint> weak_scaling(const SigmaWorkload& base,
                                      const std::vector<idx>& nodes,
                                      ProgModel pm) const;

  /// GW-FF Epsilon per-kernel times for the weak-scaling study of Fig. 3.
  /// System size grows with nodes such that CHI-0 work per node is constant.
  struct FfEpsilonTimes {
    double chi0, chi_freq, transf, mtxel, diag;
    double total() const { return chi0 + chi_freq + transf + mtxel + diag; }
  };
  FfEpsilonTimes ff_epsilon_weak(const SigmaWorkload& base, idx base_nodes,
                                 idx nodes, idx n_freq, double subspace_frac,
                                 ProgModel pm) const;

  /// GW-FF Sigma strong scaling (Fig. 4): subspace-contracted kernel.
  PerfPoint ff_sigma(const SigmaWorkload& w, idx nodes, idx n_freq,
                     double subspace_frac, ProgModel pm) const;

  double io_seconds(const SigmaWorkload& w, idx nodes) const;

  // --- calibration constants (documented fits to the paper's numbers) ---
  double eff_gpp_diag;      ///< diag kernel fraction of per-GPU peak
  double eff_gpp_offdiag;   ///< ZGEMM-recast kernel fraction of peak
  double eff_ff;            ///< FF library-GEMM fraction of peak
  double overhead_fraction = 0.29;  ///< non-kernel compute / kernel time
  double io_contention = 0.012;     ///< effective-FS-bandwidth factor
  /// Tensile-tuned ZGEMM boost for moderate problem sizes (Sec. 7.3): the
  /// default library already peaks for large N_Sigma.
  double tensile_boost_moderate = 1.10;

 private:
  double compute_seconds(double flops, idx nodes, double eff,
                         ProgModel pm, KernelClass kc) const;
  double comm_seconds(const SigmaWorkload& w, idx nodes) const;
  double imbalance_factor(const SigmaWorkload& w, idx nodes) const;

  Machine machine_;
};

/// The paper's application systems (Table 2), with Si998-a/b/c Fig. 7
/// configurations and the LiH998 GWPT workload.
std::vector<SigmaWorkload> paper_workloads(MachineKind kind);

}  // namespace xgw

#include "perf/calib.h"

#include <algorithm>

namespace xgw::perf {

double parallel_efficiency(const MeasuredRun& run) {
  if (run.workers <= 0 || run.wall_s <= 0.0 || run.busy_s <= 0.0) return 1.0;
  const double eff =
      run.busy_s / (static_cast<double>(run.workers) * run.wall_s);
  return std::clamp(eff, 1e-6, 1.0);
}

double calibrated_eff_scale(std::span<const MeasuredRun> runs) {
  const MeasuredRun* widest = nullptr;
  for (const MeasuredRun& r : runs)
    if (widest == nullptr || r.workers > widest->workers) widest = &r;
  return widest != nullptr ? parallel_efficiency(*widest) : 1.0;
}

SigmaWorkload calibrate_workload(SigmaWorkload w,
                                 std::span<const MeasuredRun> runs) {
  w.eff_scale *= calibrated_eff_scale(runs);
  return w;
}

MeasuredRun measured_run(const SimCluster::RunReport& report) {
  return MeasuredRun{report.workers, report.measured_wall_s,
                     report.measured_busy_s};
}

}  // namespace xgw::perf

#pragma once

// Machine catalogue — the paper's three platforms (Sec. 6), described by
// their published hardware parameters. The scaling simulator combines these
// with kernel work models to regenerate the paper's scaling figures; this
// is the documented substitution for hardware we do not have.
//
// Conventions (exactly the paper's):
//  * A "GPU" is one MI250X GCD on Frontier, one PVC tile on Aurora, one
//    A100 on Perlmutter.
//  * Percent-of-peak is quoted against the FULL-machine theoretical
//    (Frontier/Perlmutter) or attainable (Aurora, 11.4 TF/tile measured
//    vector-MAD peak) aggregate, matching Table 5's percentages.

#include <string>

#include "common/types.h"
#include "runtime/netmodel.h"

namespace xgw {

enum class MachineKind { kFrontier, kAurora, kPerlmutter };

struct Machine {
  std::string name;
  MachineKind kind;
  idx total_nodes;
  idx gpus_per_node;        ///< paper's GPU unit (GCD / tile / A100)
  double peak_per_gpu;      ///< FP64 FLOP/s per GPU unit (theoretical)
  double attainable_per_gpu;///< measured attainable (Aurora note); else = peak
  double hbm_bw_per_gpu;    ///< bytes/s
  double hbm_per_gpu;       ///< HBM capacity per GPU unit (bytes) — the
                            ///< budget mem::Planner sizes NV-Block against
  double fs_write_bw;       ///< aggregate filesystem bandwidth (bytes/s)
  NetworkModel net;

  double peak_total() const {
    return static_cast<double>(total_nodes * gpus_per_node) * peak_per_gpu;
  }
  double attainable_total() const {
    return static_cast<double>(total_nodes * gpus_per_node) *
           attainable_per_gpu;
  }
  idx gpus(idx nodes) const { return nodes * gpus_per_node; }
};

/// Frontier (OLCF): 9,408 nodes x 4 MI250X (8 GCDs), 23.9 TF FP64/GCD,
/// aggregate 1.80 EF.
Machine frontier();

/// Aurora (ALCF): 10,624 nodes x 6 PVC (12 tiles), 17 TF FP64/tile
/// theoretical, 11.4 TF measured attainable, aggregate attainable 1.45 EF.
Machine aurora();

/// Perlmutter (NERSC): 1,792 nodes x 4 A100, 9.7 TF FP64, aggregate 69.5 PF.
Machine perlmutter();

Machine machine_by_kind(MachineKind kind);

/// Case-sensitive lowercase lookup ("frontier" | "aurora" | "perlmutter");
/// throws xgw::Error on unknown names (driver `memory_budget_machine` key).
Machine machine_by_name(const std::string& name);

}  // namespace xgw

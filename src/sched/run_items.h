#pragma once

// Flat item-parallel adapter: builds the degenerate task graph for "n
// independent items + one join barrier" and runs it on an Executor. This
// is the shape SimCluster's rank loops, epsilon's frequency compute tasks
// and sigma's band tasks share; expressing it through TaskGraph (instead
// of a bare parallel-for) keeps one scheduler, one degrade path, and one
// set of exact-gated task/edge counters for everything.
//
// Items must follow the graph determinism contract: disjoint outputs,
// reductions elsewhere in fixed order. The join node carries no work; it
// exists so the graph has real edges (n of them) and so callers can hang
// downstream tasks off the barrier when composing larger graphs.

#include <functional>
#include <string>

#include "sched/executor.h"
#include "sched/taskgraph.h"

namespace xgw::sched {

/// Runs item_fn(0..n_items) as independent tasks on `workers` threads
/// (<= 0: Executor::default_workers()). Returns the executor stats
/// (tasks = n_items + 1 including the join node, edges = n_items).
ExecStats run_items(idx n_items, const std::function<void(idx)>& item_fn,
                    int workers = 0, const std::string& tag = "item");

}  // namespace xgw::sched

#include "sched/run_items.h"

namespace xgw::sched {

ExecStats run_items(idx n_items, const std::function<void(idx)>& item_fn,
                    int workers, const std::string& tag) {
  if (n_items <= 0) return ExecStats{};
  TaskGraph g;
  for (idx i = 0; i < n_items; ++i)
    g.add_task(tag + " " + std::to_string(i), [&item_fn, i] { item_fn(i); },
               tag);
  const TaskId join = g.add_task(tag + " join", [] {}, tag + ".join");
  for (idx i = 0; i < n_items; ++i) g.add_edge(i, join);
  return Executor(workers).run(g);
}

}  // namespace xgw::sched

#include "sched/executor.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/concurrency.h"
#include "common/error.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace xgw::sched {

namespace {

thread_local int t_worker_index = -1;

std::atomic<int> g_default_override{0};

int env_default_workers() {
  static const int n = [] {
    if (const char* s = std::getenv("XGW_SCHED_WORKERS")) {
      const int v = std::atoi(s);
      if (v >= 1) return v;
    }
    return 1;
  }();
  return n;
}

struct WorkerIndexScope {
  explicit WorkerIndexScope(int i) : prev(t_worker_index) {
    t_worker_index = i;
  }
  ~WorkerIndexScope() { t_worker_index = prev; }
  int prev;
};

}  // namespace

int Executor::default_workers() {
  const int o = g_default_override.load(std::memory_order_relaxed);
  return o >= 1 ? o : env_default_workers();
}

void Executor::set_default_workers(int n) {
  g_default_override.store(n >= 1 ? n : 0, std::memory_order_relaxed);
}

int Executor::worker_index() { return t_worker_index; }

Executor::Executor(int n_workers)
    : n_workers_(n_workers >= 1 ? n_workers : default_workers()) {}

ExecStats Executor::run(const TaskGraph& graph) const {
  ExecStats stats;
  stats.edges = graph.n_edges();
  stats.workers = static_cast<idx>(n_workers_);
  Stopwatch wall;

  const idx n = graph.n_tasks();
  if (n == 0) return stats;

  if (n_workers_ == 1) {
    // Serial path: deterministic Kahn order, inline on this thread. No
    // worker team is published (team size 1 never degrades anything).
    const std::vector<TaskId> order = graph.topo_order();
    WorkerIndexScope wi(0);
    for (TaskId id : order) {
      Stopwatch sw;
      graph.task(id).fn();
      stats.busy_s += sw.elapsed();
      stats.tasks += 1;
    }
    stats.wall_s = wall.elapsed();
    obs::metrics().counter("sched.tasks").add(
      static_cast<std::uint64_t>(stats.tasks));
    return stats;
  }

  // Shared-state parallel path. `indeg` counts unfinished deps per task;
  // tasks become ready when it hits zero. The ready deque is FIFO seeded
  // in task-id order, so at W = 1-equivalent moments the pop order matches
  // the serial schedule (helpful for debugging; correctness never depends
  // on pop order thanks to the disjoint-writes contract).
  std::mutex mu;
  std::condition_variable cv;
  std::deque<TaskId> ready;
  std::vector<idx> indeg(static_cast<std::size_t>(n), 0);
  idx remaining = n;
  bool cancelled = false;
  std::exception_ptr first_error;
  double busy_s = 0.0;
  idx steals = 0;
  idx done_tasks = 0;

  for (idx i = 0; i < n; ++i) {
    indeg[static_cast<std::size_t>(i)] =
        static_cast<idx>(graph.task(i).deps.size());
    if (indeg[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  }
  XGW_REQUIRE(!ready.empty(), "Executor: graph has no root task (cycle)");

  auto worker = [&](int wi_idx) {
    WorkerTeamScope team(n_workers_);
    WorkerIndexScope wi(wi_idx);
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait(lock, [&] {
        return cancelled || !ready.empty() || remaining == 0;
      });
      if (cancelled || (ready.empty() && remaining == 0)) return;
      if (ready.empty()) continue;
      const TaskId id = ready.front();
      ready.pop_front();
      lock.unlock();

      Stopwatch sw;
      std::exception_ptr err;
      try {
        graph.task(id).fn();
      } catch (...) {
        err = std::current_exception();
      }
      const double t = sw.elapsed();

      lock.lock();
      busy_s += t;
      done_tasks += 1;
      if (wi_idx != 0) steals += 1;
      if (err) {
        if (!first_error) first_error = err;
        cancelled = true;
        cv.notify_all();
        return;
      }
      remaining -= 1;
      for (TaskId out : graph.task(id).outs)
        if (--indeg[static_cast<std::size_t>(out)] == 0)
          ready.push_back(out);
      if (remaining == 0 || !ready.empty()) cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(n_workers_));
  for (int w = 0; w < n_workers_; ++w) pool.emplace_back(worker, w);
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
  XGW_REQUIRE(remaining == 0, "Executor: deadlock (cyclic dependencies)");

  stats.tasks = done_tasks;
  stats.steals = steals;
  stats.busy_s = busy_s;
  stats.wall_s = wall.elapsed();
  obs::metrics().counter("sched.tasks").add(
      static_cast<std::uint64_t>(stats.tasks));
  return stats;
}

}  // namespace xgw::sched

#pragma once

// Worker-pool executor for TaskGraph: W std::thread workers draining a
// shared ready-queue (tasks whose in-edges have all completed). W = 1 is
// special-cased to run the deterministic Kahn order inline on the calling
// thread — byte-for-byte the old serial execution, so "scheduler with one
// worker" and "no scheduler" are indistinguishable.
//
// Cooperation with nested parallelism: each worker runs under a
// WorkerTeamScope (common/concurrency.h), so the gen-3 GEMM dispatch point
// and the chi frequency team degrade to their serial-equivalent variants
// instead of oversubscribing the host with W full OpenMP teams. Because
// those variants are bitwise-identical by construction, this is purely a
// throughput decision.
//
// Exceptions: the first task exception (in task-id order of observation)
// is captured, the queue is cancelled (no new tasks start; running tasks
// finish), and run() rethrows it on the calling thread.

#include <cstdint>

#include "sched/taskgraph.h"

namespace xgw::sched {

/// Deterministic execution statistics (exact-gated in bench_sched).
struct ExecStats {
  idx tasks = 0;        ///< tasks executed
  idx edges = 0;        ///< edges in the graph
  idx workers = 0;      ///< worker count used
  idx steals = 0;       ///< tasks run by a worker other than worker 0
  double wall_s = 0.0;  ///< wall time of the run() call
  double busy_s = 0.0;  ///< summed per-task execution time across workers
};

class Executor {
 public:
  /// n_workers <= 0 means default_workers().
  explicit Executor(int n_workers = 0);

  int n_workers() const { return n_workers_; }

  /// Runs the graph to completion (blocking). Rethrows the first task
  /// exception after all in-flight tasks drain. The graph's task
  /// functions are invoked exactly once each.
  ExecStats run(const TaskGraph& graph) const;

  /// Worker count from XGW_SCHED_WORKERS (>=1), else set_default_workers()
  /// value, else 1. Read once; the env var is the CI threads-matrix knob.
  static int default_workers();

  /// Programmatic override (e.g. the driver's `sched_workers` input key).
  /// 0 restores the environment/1 default.
  static void set_default_workers(int n);

  /// Index of the current worker within a running Executor: 0..W-1 on a
  /// worker thread (or the calling thread for W = 1 runs), -1 elsewhere.
  /// Lets tasks keep per-worker state (scratch arenas) without locking.
  static int worker_index();

 private:
  int n_workers_;
};

}  // namespace xgw::sched

#include "sched/taskgraph.h"

#include <algorithm>
#include <deque>

#include "common/error.h"

namespace xgw::sched {

TaskId TaskGraph::add_task(std::string name, std::function<void()> fn,
                           std::string tag, double flops) {
  Task t;
  t.name = std::move(name);
  t.fn = std::move(fn);
  t.tag = std::move(tag);
  t.flops = flops;
  tasks_.push_back(std::move(t));
  return static_cast<TaskId>(tasks_.size() - 1);
}

void TaskGraph::add_edge(TaskId from, TaskId to) {
  XGW_REQUIRE(from >= 0 && from < n_tasks() && to >= 0 && to < n_tasks(),
              "TaskGraph::add_edge: id out of range");
  XGW_REQUIRE(from != to, "TaskGraph::add_edge: self-edge");
  auto& deps = tasks_[static_cast<std::size_t>(to)].deps;
  if (std::find(deps.begin(), deps.end(), from) != deps.end()) return;
  deps.push_back(from);
  tasks_[static_cast<std::size_t>(from)].outs.push_back(to);
  n_edges_ += 1;
}

std::vector<TaskId> TaskGraph::topo_order() const {
  const idx n = n_tasks();
  std::vector<idx> indeg(static_cast<std::size_t>(n), 0);
  for (idx i = 0; i < n; ++i)
    indeg[static_cast<std::size_t>(i)] =
        static_cast<idx>(tasks_[static_cast<std::size_t>(i)].deps.size());

  std::deque<TaskId> ready;
  for (idx i = 0; i < n; ++i)
    if (indeg[static_cast<std::size_t>(i)] == 0) ready.push_back(i);

  std::vector<TaskId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (TaskId out : tasks_[static_cast<std::size_t>(id)].outs)
      if (--indeg[static_cast<std::size_t>(out)] == 0) ready.push_back(out);
  }
  XGW_REQUIRE(static_cast<idx>(order.size()) == n,
              "TaskGraph::topo_order: dependency cycle");
  return order;
}

double TaskGraph::critical_path_flops() const {
  const std::vector<TaskId> order = topo_order();
  std::vector<double> cost(tasks_.size(), 0.0);
  double best = 0.0;
  for (TaskId id : order) {
    const Task& t = tasks_[static_cast<std::size_t>(id)];
    double pre = 0.0;
    for (TaskId d : t.deps)
      pre = std::max(pre, cost[static_cast<std::size_t>(d)]);
    cost[static_cast<std::size_t>(id)] = pre + t.flops;
    best = std::max(best, cost[static_cast<std::size_t>(id)]);
  }
  return best;
}

}  // namespace xgw::sched

#pragma once

// Dependency-driven task graph: the execution layer behind the hybrid
// simulated/real runtime (ROADMAP item 2). A TaskGraph is a DAG of tasks
// with EXPLICIT in/out edges — epsilon frequency batches, Sigma
// pools/bands, and NV-blocks become nodes, and comm/compute overlap falls
// out of the dependency structure instead of being hand-scheduled (the
// OpenAtom GW phase-graph idea, PAPERS.md).
//
// Determinism contract (the rule every producer of nodes must follow so
// results are bitwise-identical at any worker count):
//   1. tasks write DISJOINT outputs (slot-per-task), and
//   2. any cross-task reduction happens in a dedicated node that reads its
//      inputs in a FIXED order independent of completion order (the same
//      fixed-order discipline as the GEMM engine's two-stage reductions).
// The scheduler then only changes WHEN tasks run, never what they compute
// or the order anything is summed.

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace xgw::sched {

using TaskId = idx;

struct Task {
  std::string name;          ///< label for traces and error messages
  std::function<void()> fn;  ///< the work; must only touch its own outputs
  std::string tag;           ///< coarse kind ("eps.freq", "sigma.band", ...)
  double flops = 0.0;        ///< estimate for critical-path / alpha-beta use
  std::vector<TaskId> deps;  ///< in-edges: tasks that must finish first
  std::vector<TaskId> outs;  ///< out-edges (derived; kept for traversal)
};

class TaskGraph {
 public:
  /// Adds a node; returns its id. Ids are dense [0, n_tasks).
  TaskId add_task(std::string name, std::function<void()> fn,
                  std::string tag = "task", double flops = 0.0);

  /// Declares "to depends on from" (from -> to). Both ids must exist;
  /// duplicate edges are allowed and deduplicated here.
  void add_edge(TaskId from, TaskId to);

  idx n_tasks() const { return static_cast<idx>(tasks_.size()); }
  idx n_edges() const { return n_edges_; }
  const Task& task(TaskId id) const { return tasks_[static_cast<std::size_t>(id)]; }

  /// Kahn topological order with FIFO tie-breaking by task id — the
  /// deterministic serial schedule (what a 1-worker Executor runs).
  /// Throws Error on a cycle.
  std::vector<TaskId> topo_order() const;

  /// Sum of `flops` along the most expensive dependency chain — the
  /// alpha-beta projector's lower bound on parallel time.
  double critical_path_flops() const;

 private:
  friend class Executor;
  std::vector<Task> tasks_;
  idx n_edges_ = 0;
};

}  // namespace xgw::sched

#include "pw/lattice.h"

#include <cmath>

#include "common/error.h"

namespace xgw {

Lattice::Lattice(const Vec3& a1, const Vec3& a2, const Vec3& a3)
    : a_{a1, a2, a3} {
  volume_ = dot(a1, cross(a2, a3));
  XGW_REQUIRE(std::abs(volume_) > 1e-12,
              "Lattice: degenerate (zero-volume) cell");
  const double f = kTwoPi / volume_;
  b_[0] = f * cross(a2, a3);
  b_[1] = f * cross(a3, a1);
  b_[2] = f * cross(a1, a2);
  volume_ = std::abs(volume_);
}

Lattice Lattice::cubic(double alat) {
  return Lattice({alat, 0, 0}, {0, alat, 0}, {0, 0, alat});
}

Lattice Lattice::fcc(double alat) {
  const double h = 0.5 * alat;
  return Lattice({0, h, h}, {h, 0, h}, {h, h, 0});
}

Lattice Lattice::fcc_supercell(double alat, idx n) {
  XGW_REQUIRE(n >= 1, "fcc_supercell: n must be >= 1");
  const double h = 0.5 * alat * static_cast<double>(n);
  return Lattice({0, h, h}, {h, 0, h}, {h, h, 0});
}

Lattice Lattice::hexagonal(double a, double c) {
  const double h = 0.5 * std::sqrt(3.0);
  return Lattice({a, 0, 0}, {-0.5 * a, h * a, 0}, {0, 0, c});
}

Vec3 Lattice::g_cart(const IVec3& hkl) const {
  Vec3 g{0, 0, 0};
  for (int i = 0; i < 3; ++i)
    g = g + static_cast<double>(hkl[static_cast<std::size_t>(i)]) * b_[static_cast<std::size_t>(i)];
  return g;
}

double Lattice::g_norm2(const IVec3& hkl) const {
  const Vec3 g = g_cart(hkl);
  return dot(g, g);
}

Vec3 Lattice::r_cart(const Vec3& frac) const {
  Vec3 r{0, 0, 0};
  for (int i = 0; i < 3; ++i)
    r = r + frac[static_cast<std::size_t>(i)] * a_[static_cast<std::size_t>(i)];
  return r;
}

}  // namespace xgw

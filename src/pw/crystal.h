#pragma once

// Crystal structure: lattice + atomic basis, plus per-species structure
// factors S_s(G) = sum_{atoms of s} e^{-i G . tau} that the empirical
// pseudopotential mean field combines with form factors.

#include <string>
#include <vector>

#include "pw/gvectors.h"
#include "pw/lattice.h"

namespace xgw {

struct Atom {
  int species = 0;      ///< index into the species table of the owning model
  Vec3 frac{0, 0, 0};   ///< position in crystal (fractional) coordinates
};

class Crystal {
 public:
  Crystal(Lattice lattice, std::vector<Atom> atoms,
          std::vector<std::string> species_names);

  const Lattice& lattice() const { return lattice_; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  idx n_atoms() const { return static_cast<idx>(atoms_.size()); }
  int n_species() const { return static_cast<int>(species_names_.size()); }
  const std::string& species_name(int s) const {
    return species_names_[static_cast<std::size_t>(s)];
  }

  /// S_s(G) = sum_{a in species s} e^{-i G . tau_a} for one Miller triple.
  cplx structure_factor(int species, const IVec3& hkl) const;

  /// Displace atom `ia` by `delta_cart` (Bohr, cartesian). Used by GWPT /
  /// frozen-phonon finite differences.
  Crystal displaced(idx ia, const Vec3& delta_cart) const;

  /// Diamond-structure supercell: n x n x n conventional-FCC supercell of a
  /// two-atom diamond basis (2 n^3 atoms for the primitive fcc cell scaling;
  /// here the primitive cell has 2 atoms so the supercell has 2 n^3).
  static Crystal diamond(double alat, idx n, const std::string& species);

  /// Rocksalt supercell (two species), e.g. LiH: 2 n^3 atoms.
  static Crystal rocksalt(double alat, idx n, const std::string& species_a,
                          const std::string& species_b);

  /// Zincblende supercell (two species), used as the BN analogue.
  static Crystal zincblende(double alat, idx n, const std::string& species_a,
                            const std::string& species_b);

  /// Hexagonal two-species monolayer (h-BN-like) with vacuum height `c`:
  /// atoms at (1/3, 2/3, 1/2) and (2/3, 1/3, 1/2) of an n x n in-plane
  /// supercell (2 n^2 atoms).
  static Crystal hexagonal_monolayer(double a, double c, idx n,
                                     const std::string& species_a,
                                     const std::string& species_b);

  /// Copy with atom `ia` removed — a vacancy defect supercell (the paper's
  /// Si divacancy and LiH defect workloads).
  Crystal with_vacancy(idx ia) const;

  /// Copy with atom `ia`'s species replaced — substitutional defect (the
  /// paper's carbon substitution at a boron site in BN867).
  Crystal with_substitution(idx ia, int new_species) const;

 private:
  Lattice lattice_;
  std::vector<Atom> atoms_;
  std::vector<std::string> species_names_;
};

}  // namespace xgw

#include "pw/gvectors.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "common/error.h"

namespace xgw {

GSphere::GSphere(const Lattice& lattice, double cutoff_hartree)
    : cutoff_(cutoff_hartree) {
  XGW_REQUIRE(cutoff_hartree > 0.0, "GSphere: cutoff must be positive");
  const double gmax2 = 2.0 * cutoff_hartree;  // |G|^2 <= 2 E_cut
  const double gmax = std::sqrt(gmax2);

  // Conservative per-axis Miller bounds: |h_i| <= gmax / min-height of the
  // reciprocal cell along b_i. Use |b_i| shrunk by worst-case obliqueness via
  // the reciprocal metric; a safe bound is gmax * |a_i| / (2 pi).
  IVec3 bound;
  for (int i = 0; i < 3; ++i) {
    const Vec3& ai = lattice.a(i);
    bound[static_cast<std::size_t>(i)] =
        static_cast<idx>(std::ceil(gmax * std::sqrt(dot(ai, ai)) / kTwoPi)) + 1;
  }

  struct Entry {
    IVec3 hkl;
    double n2;
  };
  std::vector<Entry> entries;
  for (idx h = -bound[0]; h <= bound[0]; ++h)
    for (idx k = -bound[1]; k <= bound[1]; ++k)
      for (idx l = -bound[2]; l <= bound[2]; ++l) {
        const IVec3 hkl{h, k, l};
        const double n2 = lattice.g_norm2(hkl);
        if (n2 <= gmax2 * (1.0 + 1e-12)) entries.push_back({hkl, n2});
      }

  std::sort(entries.begin(), entries.end(), [](const Entry& x, const Entry& y) {
    if (x.n2 != y.n2) return x.n2 < y.n2;
    return std::tie(x.hkl[0], x.hkl[1], x.hkl[2]) <
           std::tie(y.hkl[0], y.hkl[1], y.hkl[2]);
  });

  miller_.reserve(entries.size());
  norm2_.reserve(entries.size());
  for (const auto& e : entries) {
    index_[e.hkl] = static_cast<idx>(miller_.size());
    miller_.push_back(e.hkl);
    norm2_.push_back(e.n2);
    for (int i = 0; i < 3; ++i)
      max_miller_[static_cast<std::size_t>(i)] =
          std::max(max_miller_[static_cast<std::size_t>(i)],
                   std::abs(e.hkl[static_cast<std::size_t>(i)]));
  }
  XGW_REQUIRE(!miller_.empty() && (miller_[0] == IVec3{0, 0, 0}),
              "GSphere: G=0 must be the first basis vector");
}

idx GSphere::find(const IVec3& hkl) const {
  const auto it = index_.find(hkl);
  return it == index_.end() ? -1 : it->second;
}

FftBox GSphere::minimal_box() const {
  return FftBox{next_fast_size(2 * max_miller_[0] + 1),
                next_fast_size(2 * max_miller_[1] + 1),
                next_fast_size(2 * max_miller_[2] + 1)};
}

FftBox product_box(const GSphere& psi_sphere, const GSphere& eps_sphere) {
  const IVec3 mp = psi_sphere.max_miller();
  const IVec3 me = eps_sphere.max_miller();
  return FftBox{next_fast_size(2 * mp[0] + me[0] + 1),
                next_fast_size(2 * mp[1] + me[1] + 1),
                next_fast_size(2 * mp[2] + me[2] + 1)};
}

idx box_index(const FftBox& box, const IVec3& hkl) {
  const idx i1 = ((hkl[0] % box.n1) + box.n1) % box.n1;
  const idx i2 = ((hkl[1] % box.n2) + box.n2) % box.n2;
  const idx i3 = ((hkl[2] % box.n3) + box.n3) % box.n3;
  return (i1 * box.n2 + i2) * box.n3 + i3;
}

void scatter_to_box(const GSphere& sphere, const cplx* coeffs, const FftBox& box,
                    cplx* box_data) {
  std::fill(box_data, box_data + box.size(), cplx{});
  for (idx ig = 0; ig < sphere.size(); ++ig)
    box_data[box_index(box, sphere.miller(ig))] = coeffs[ig];
}

void gather_from_box(const GSphere& sphere, const FftBox& box,
                     const cplx* box_data, cplx* coeffs) {
  for (idx ig = 0; ig < sphere.size(); ++ig)
    coeffs[ig] = box_data[box_index(box, sphere.miller(ig))];
}

}  // namespace xgw

#include "pw/crystal.h"

#include <cmath>

#include "common/error.h"

namespace xgw {

Crystal::Crystal(Lattice lattice, std::vector<Atom> atoms,
                 std::vector<std::string> species_names)
    : lattice_(std::move(lattice)),
      atoms_(std::move(atoms)),
      species_names_(std::move(species_names)) {
  for (const Atom& a : atoms_)
    XGW_REQUIRE(a.species >= 0 && a.species < n_species(),
                "Crystal: atom species index out of range");
}

cplx Crystal::structure_factor(int species, const IVec3& hkl) const {
  cplx s{};
  for (const Atom& a : atoms_) {
    if (a.species != species) continue;
    // G . tau = 2 pi (h,k,l) . frac — exact in crystal coordinates.
    const double phase =
        -kTwoPi * (static_cast<double>(hkl[0]) * a.frac[0] +
                   static_cast<double>(hkl[1]) * a.frac[1] +
                   static_cast<double>(hkl[2]) * a.frac[2]);
    s += cplx{std::cos(phase), std::sin(phase)};
  }
  return s;
}

Crystal Crystal::displaced(idx ia, const Vec3& delta_cart) const {
  XGW_REQUIRE(ia >= 0 && ia < n_atoms(), "displaced: atom index out of range");
  // Convert the cartesian displacement to fractional: frac_i += delta . b_i / 2pi.
  Crystal out = *this;
  Vec3& frac = out.atoms_[static_cast<std::size_t>(ia)].frac;
  for (int i = 0; i < 3; ++i)
    frac[static_cast<std::size_t>(i)] +=
        dot(delta_cart, lattice_.b(i)) / kTwoPi;
  return out;
}

Crystal Crystal::diamond(double alat, idx n, const std::string& species) {
  Lattice lat = Lattice::fcc_supercell(alat, n);
  std::vector<Atom> atoms;
  const double invn = 1.0 / static_cast<double>(n);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j)
      for (idx k = 0; k < n; ++k) {
        const Vec3 base{static_cast<double>(i) * invn,
                        static_cast<double>(j) * invn,
                        static_cast<double>(k) * invn};
        atoms.push_back({0, base});
        atoms.push_back({0, base + Vec3{0.25 * invn, 0.25 * invn, 0.25 * invn}});
      }
  return Crystal(std::move(lat), std::move(atoms), {species});
}

Crystal Crystal::rocksalt(double alat, idx n, const std::string& species_a,
                          const std::string& species_b) {
  Lattice lat = Lattice::fcc_supercell(alat, n);
  std::vector<Atom> atoms;
  const double invn = 1.0 / static_cast<double>(n);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j)
      for (idx k = 0; k < n; ++k) {
        const Vec3 base{static_cast<double>(i) * invn,
                        static_cast<double>(j) * invn,
                        static_cast<double>(k) * invn};
        atoms.push_back({0, base});
        atoms.push_back({1, base + Vec3{0.5 * invn, 0.5 * invn, 0.5 * invn}});
      }
  return Crystal(std::move(lat), std::move(atoms), {species_a, species_b});
}

Crystal Crystal::zincblende(double alat, idx n, const std::string& species_a,
                            const std::string& species_b) {
  Lattice lat = Lattice::fcc_supercell(alat, n);
  std::vector<Atom> atoms;
  const double invn = 1.0 / static_cast<double>(n);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j)
      for (idx k = 0; k < n; ++k) {
        const Vec3 base{static_cast<double>(i) * invn,
                        static_cast<double>(j) * invn,
                        static_cast<double>(k) * invn};
        atoms.push_back({0, base});
        atoms.push_back({1, base + Vec3{0.25 * invn, 0.25 * invn, 0.25 * invn}});
      }
  return Crystal(std::move(lat), std::move(atoms), {species_a, species_b});
}

Crystal Crystal::hexagonal_monolayer(double a, double c, idx n,
                                     const std::string& species_a,
                                     const std::string& species_b) {
  XGW_REQUIRE(n >= 1, "hexagonal_monolayer: n must be >= 1");
  const double an = a * static_cast<double>(n);
  Lattice lat = Lattice::hexagonal(an, c);
  std::vector<Atom> atoms;
  const double invn = 1.0 / static_cast<double>(n);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j) {
      const Vec3 base{static_cast<double>(i) * invn,
                      static_cast<double>(j) * invn, 0.0};
      atoms.push_back(
          {0, base + Vec3{invn / 3.0, 2.0 * invn / 3.0, 0.5}});
      atoms.push_back(
          {1, base + Vec3{2.0 * invn / 3.0, invn / 3.0, 0.5}});
    }
  return Crystal(std::move(lat), std::move(atoms), {species_a, species_b});
}

Crystal Crystal::with_vacancy(idx ia) const {
  XGW_REQUIRE(ia >= 0 && ia < n_atoms(), "with_vacancy: index out of range");
  Crystal out = *this;
  out.atoms_.erase(out.atoms_.begin() + static_cast<std::ptrdiff_t>(ia));
  return out;
}

Crystal Crystal::with_substitution(idx ia, int new_species) const {
  XGW_REQUIRE(ia >= 0 && ia < n_atoms(),
              "with_substitution: index out of range");
  XGW_REQUIRE(new_species >= 0 && new_species < n_species(),
              "with_substitution: species out of range");
  Crystal out = *this;
  out.atoms_[static_cast<std::size_t>(ia)].species = new_species;
  return out;
}

}  // namespace xgw

#pragma once

// Real- and reciprocal-space lattice geometry (Hartree atomic units: lengths
// in Bohr, energies in Hartree).

#include <array>

#include "common/types.h"

namespace xgw {

using Vec3 = std::array<double, 3>;
using IVec3 = std::array<idx, 3>;

inline Vec3 operator+(const Vec3& a, const Vec3& b) {
  return {a[0] + b[0], a[1] + b[1], a[2] + b[2]};
}
inline Vec3 operator-(const Vec3& a, const Vec3& b) {
  return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}
inline Vec3 operator*(double s, const Vec3& a) {
  return {s * a[0], s * a[1], s * a[2]};
}
inline double dot(const Vec3& a, const Vec3& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}
inline Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
          a[0] * b[1] - a[1] * b[0]};
}

/// Bravais lattice: rows of `a` are the real-space primitive vectors (Bohr).
class Lattice {
 public:
  /// Constructs from three real-space lattice vectors (Bohr).
  Lattice(const Vec3& a1, const Vec3& a2, const Vec3& a3);

  /// Simple cubic cell of side `alat`.
  static Lattice cubic(double alat);

  /// FCC primitive cell with conventional lattice constant `alat`.
  static Lattice fcc(double alat);

  /// Rocksalt/zincblende-style supercell: FCC primitive cell scaled n times
  /// in each direction (n^3 primitive cells).
  static Lattice fcc_supercell(double alat, idx n);

  /// Hexagonal cell with in-plane constant `a` and out-of-plane height `c`
  /// (layered/2-D systems with vacuum along the third axis — the paper's
  /// BN moire bilayer geometry class).
  static Lattice hexagonal(double a, double c);

  const Vec3& a(int i) const { return a_[i]; }
  /// Reciprocal vector b_i with a_i . b_j = 2 pi delta_ij (1/Bohr).
  const Vec3& b(int i) const { return b_[i]; }

  double cell_volume() const { return volume_; }

  /// Cartesian G (1/Bohr) for integer Miller triple (h, k, l).
  Vec3 g_cart(const IVec3& hkl) const;

  /// |G|^2 (1/Bohr^2) for a Miller triple.
  double g_norm2(const IVec3& hkl) const;

  /// Cartesian position for crystal (fractional) coordinates.
  Vec3 r_cart(const Vec3& frac) const;

 private:
  std::array<Vec3, 3> a_;
  std::array<Vec3, 3> b_;
  double volume_;
};

}  // namespace xgw

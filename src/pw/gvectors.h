#pragma once

// Plane-wave basis: G-vector spheres and their mapping onto FFT boxes.
//
// Two spheres appear in the GW workflow (Table 1 of the paper):
//   N_G^psi — wavefunction cutoff sphere (kinetic energy cutoff E_psi)
//   N_G     — epsilon/chi sphere (cutoff E_eps <= E_psi typically)
// Both are enumerated here deterministically: sorted by |G|^2, ties broken
// lexicographically by Miller index so that basis ordering is stable across
// runs and platforms.

#include <map>
#include <vector>

#include "fft/fft.h"
#include "pw/lattice.h"

namespace xgw {

/// Set of reciprocal-lattice vectors with kinetic energy |G|^2/2 <= cutoff.
class GSphere {
 public:
  /// Enumerates all G with |G|^2 / 2 <= cutoff_hartree. G=0 is index 0.
  GSphere(const Lattice& lattice, double cutoff_hartree);

  idx size() const { return static_cast<idx>(miller_.size()); }
  double cutoff() const { return cutoff_; }

  const IVec3& miller(idx ig) const { return miller_[static_cast<std::size_t>(ig)]; }
  /// |G|^2 in 1/Bohr^2.
  double norm2(idx ig) const { return norm2_[static_cast<std::size_t>(ig)]; }
  Vec3 cart(const Lattice& lattice, idx ig) const {
    return lattice.g_cart(miller(ig));
  }

  /// Index of Miller triple (h,k,l), or -1 if outside the sphere. O(log N)
  /// via a lookup table built at construction (used heavily when assembling
  /// V(G-G') Hamiltonian blocks).
  idx find(const IVec3& hkl) const;

  /// Largest |h_i| over the sphere, per axis.
  IVec3 max_miller() const { return max_miller_; }

  /// Smallest FFT box (2,3,5-smooth dims) that holds this sphere without
  /// wraparound aliasing for a SINGLE field: n_i >= 2*hmax_i + 1.
  FftBox minimal_box() const;

 private:
  double cutoff_;
  std::vector<IVec3> miller_;
  std::vector<double> norm2_;
  IVec3 max_miller_{0, 0, 0};
  std::map<IVec3, idx> index_;
};

/// FFT box able to represent products psi_m^* e^{iGr} psi_n without aliasing,
/// where both psi live on `psi_sphere` and G runs over `eps_sphere`:
/// n_i >= 2*hmax_psi_i + hmax_eps_i + 1, rounded to 2,3,5-smooth sizes.
FftBox product_box(const GSphere& psi_sphere, const GSphere& eps_sphere);

/// Scatter sphere coefficients into an FFT box (zero-filled elsewhere).
/// Negative Miller indices wrap: index = (h % n + n) % n.
void scatter_to_box(const GSphere& sphere, const cplx* coeffs, const FftBox& box,
                    cplx* box_data);

/// Gather sphere coefficients out of an FFT box.
void gather_from_box(const GSphere& sphere, const FftBox& box,
                     const cplx* box_data, cplx* coeffs);

/// Flat box index of a Miller triple under wraparound.
idx box_index(const FftBox& box, const IVec3& hkl);

}  // namespace xgw

#include "mem/arena.h"

#include <new>
#include <vector>

namespace xgw::mem {

namespace {

// Per-thread binding state. `g_route` is the arena new allocations draw
// from (nullptr = heap); `g_bound` is every arena with a live scope on this
// thread, consulted on deallocation even while a HeapScope suspends
// routing. Plain vector: scopes nest a handful deep at most.
thread_local Arena* g_route = nullptr;
thread_local std::vector<Arena*> g_bound;

}  // namespace

Arena::Arena(std::size_t capacity) : capacity_(capacity) {
  slab_ = static_cast<unsigned char*>(
      ::operator new(capacity_, std::align_val_t{64}));
  tracker().on_alloc(Tag::kArena, capacity_);
}

Arena::~Arena() {
  tracker().on_free(Tag::kArena, capacity_);
  ::operator delete(slab_, std::align_val_t{64});
}

void* Arena::allocate(std::size_t bytes, std::size_t align) noexcept {
  if (align < 64) align = 64;
  const std::size_t begin = (offset_ + align - 1) & ~(align - 1);
  if (begin + bytes > capacity_) {
    ++overflows_;
    return nullptr;
  }
  offset_ = begin + bytes;
  if (offset_ > high_water_) high_water_ = offset_;
  return slab_ + begin;
}

void Arena::deallocate(void* p, std::size_t bytes) noexcept {
  // Rewind only when the block ends at the bump pointer (it was the newest
  // live allocation): the tight alloc/free loop then reuses the same bytes.
  // Out-of-order frees stay reserved until the enclosing mark is released.
  auto* c = static_cast<unsigned char*>(p);
  if (c + bytes == slab_ + offset_)
    offset_ = static_cast<std::size_t>(c - slab_);
}

void Arena::release(Mark m) noexcept {
  if (m.offset <= offset_) offset_ = m.offset;
}

ArenaScope::ArenaScope(Arena& arena) : arena_(&arena), mark_(arena.mark()) {
  g_bound.push_back(arena_);
  g_route = arena_;
}

ArenaScope::~ArenaScope() {
  arena_->release(mark_);
  g_bound.pop_back();
  g_route = g_bound.empty() ? nullptr : g_bound.back();
}

HeapScope::HeapScope() : saved_(g_route) { g_route = nullptr; }

HeapScope::~HeapScope() { g_route = saved_; }

Arena* current_arena() noexcept { return g_route; }

Arena* owning_arena(const void* p) noexcept {
  for (auto it = g_bound.rbegin(); it != g_bound.rend(); ++it)
    if ((*it)->contains(p)) return *it;
  return nullptr;
}

void* tracked_arena_alloc(std::size_t bytes, std::size_t align) noexcept {
  Arena* a = g_route;
  if (a == nullptr) return nullptr;
  return a->allocate(bytes, align);
}

bool tracked_arena_free(void* p, std::size_t bytes) noexcept {
  Arena* a = owning_arena(p);
  if (a == nullptr) return false;
  a->deallocate(p, bytes);
  return true;
}

}  // namespace xgw::mem

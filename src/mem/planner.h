#pragma once

// Budget-driven capacity planner — the paper's per-GPU fitting argument
// (Sec. 5.2) as code.
//
// Given a byte budget (a `memory_budget_mb` driver key, or the HBM size of
// a perf::machines platform) and the problem dimensions, the planner solves
// for the three block sizes that bound the GW working set:
//
//  * nv_block     — NV-Block valence block of CHI_SUM. The pair workspace
//                   is nv_block * N_c * ncols complex; larger blocks mean
//                   larger rank-k GEMMs (higher arithmetic intensity), so
//                   the planner picks the LARGEST block that fits.
//  * freq_batch   — frequencies per CHI-Freq pass. Each batched frequency
//                   holds an ncols x ncols accumulator; each extra PASS
//                   re-pays the MTXEL/Transf stage, so the planner
//                   maximizes the batch before growing nv_block (MTXEL
//                   amortization dominates the intensity gain — the reason
//                   19 extra frequencies are nearly free in Sec. 7.2).
//  * gprime_slice — G' column-slice width of the Sigma FF off-diagonal
//                   ZGEMM recast, bounding its N_Sigma x N_G' scratch.
//
// Every size the model charges mirrors one concrete allocation in
// core/chi.cpp, core/epsilon.cpp and core/sigma_ff.cpp; test_mem holds the
// model to the measured MemTracker high-water mark within 10%.
//
// When even the minimal plan (nv_block = 1, freq_batch = 1) exceeds the
// budget, the planner either flags spill (out-of-core paging via
// mem/spill) or, when spill is disallowed, throws an Error naming the
// minimum feasible budget — never a silent overshoot.

#include <cstddef>
#include <string>

#include "common/types.h"

namespace xgw::mem {

struct PlannerInput {
  std::size_t budget_bytes = 0;  ///< 0 = unlimited (no-blocking fast path)
  idx nv = 0;                    ///< valence bands
  idx nc = 0;                    ///< conduction bands
  idx ng = 0;                    ///< plane waves of the chi/eps basis
  idx ncols = 0;                 ///< chi accumulation basis (N_G, or N_Eig)
  idx nfreq = 1;                 ///< frequency grid length
  idx n_sigma = 0;               ///< external Sigma band-set size (0 = none)
  int threads = 1;               ///< OpenMP threads (per-thread workspaces)
  std::size_t fixed_bytes = 0;   ///< resident baseline (bands, mtxel cache)
  bool allow_spill = true;       ///< false: throw instead of planning spill
};

struct MemPlan {
  idx nv_block = 1;
  idx freq_batch = 1;
  idx gprime_slice = 0;      ///< 0 = unsliced (full N_G)
  bool fits_in_core = false;  ///< whole problem fits: no blocking needed
  bool needs_spill = false;  ///< ε^{-1}(ω) set must page through mem/spill
  std::size_t planned_peak_bytes = 0;  ///< model prediction incl. fixed_bytes
  /// Bytes the spill pool may keep resident (only when needs_spill).
  std::size_t spill_resident_bytes = 0;

  std::string describe() const;
};

/// Working-set model of one CHI_SUM / CHI-Freq pass (chi_multi): the exact
/// allocations of core/chi.cpp for the given blocking.
std::size_t chi_workspace_bytes(const PlannerInput& in, idx nv_block,
                                idx freq_batch);

/// Arena capacity for one epsilon-loop iteration (chi at one frequency +
/// dense inversion temporaries), used to size the loop's workspace arena.
std::size_t epsilon_step_arena_bytes(idx ng, idx nv, idx nc, int threads);

/// Solves the blocking under `in.budget_bytes`. Throws xgw::Error with an
/// actionable message when the budget cannot hold even the minimal plan and
/// `allow_spill` is false.
MemPlan plan(const PlannerInput& in);

inline std::size_t mb(double m) {
  return static_cast<std::size_t>(m * 1024.0 * 1024.0);
}

}  // namespace xgw::mem

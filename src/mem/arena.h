#pragma once

// Workspace arenas — the no-allocation half of the memory subsystem.
//
// GW inner loops (the epsilon frequency loop, the CHI-Freq accumulation,
// the Sigma band loop) need the same set of temporaries every iteration.
// An Arena is one tracked slab with a bump pointer: allocation is a pointer
// add, release is a watermark rewind, and iteration N reuses iteration
// N-1's bytes exactly — the steady state performs zero heap allocations
// (asserted by tests via MemTracker::alloc_calls).
//
// Binding: ArenaScope pushes the arena onto a thread-local stack and takes
// a mark; while bound, every TrackedAllocator container constructed on this
// thread (ZMatrix, tracked vectors) draws from the arena. The scope's
// destructor releases back to the mark. Containers must therefore not
// outlive the scope that allocated them — copy results out under HeapScope
// (which suspends the binding) before the scope closes.
//
// Overflow is graceful: when the slab cannot satisfy a request the
// allocator falls back to the tracked heap path, so an undersized arena
// costs performance, never correctness (overflow count is recorded).

#include <cstddef>
#include <cstdint>

#include "mem/tracker.h"

namespace xgw::mem {

class Arena {
 public:
  /// Reserves one slab of `capacity` bytes (tracked under Tag::kArena).
  explicit Arena(std::size_t capacity);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump allocation aligned to `align` (>= 64 for matrix rows); returns
  /// nullptr when the remaining slab cannot hold `bytes` (caller falls back
  /// to the heap).
  void* allocate(std::size_t bytes, std::size_t align = 64) noexcept;

  /// Frees one block: rewinds the bump pointer when `p` is the most recent
  /// live allocation (tight-loop reuse); otherwise the bytes stay reserved
  /// until the enclosing mark is released.
  void deallocate(void* p, std::size_t bytes) noexcept;

  struct Mark {
    std::size_t offset = 0;
  };

  Mark mark() const noexcept { return Mark{offset_}; }
  void release(Mark m) noexcept;

  bool contains(const void* p) const noexcept {
    const auto* c = static_cast<const unsigned char*>(p);
    return c >= slab_ && c < slab_ + capacity_;
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return offset_; }
  /// High-water mark of the bump pointer over the arena's lifetime.
  std::size_t high_water() const noexcept { return high_water_; }
  /// Requests that did not fit and fell back to the heap.
  std::uint64_t overflow_count() const noexcept { return overflows_; }

 private:
  friend class ArenaScope;

  unsigned char* slab_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t offset_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t overflows_ = 0;
};

/// Binds `arena` to the calling thread for the scope's lifetime and
/// releases to the entry mark on destruction. Nests (inner scopes shadow
/// outer ones); each scope must be destroyed on the thread that created it.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

/// Temporarily suspends any arena binding on the calling thread: containers
/// constructed inside a HeapScope allocate from the tracked heap and may
/// safely outlive the surrounding ArenaScope (how per-iteration results are
/// copied out of the arena).
class HeapScope {
 public:
  HeapScope();
  ~HeapScope();

  HeapScope(const HeapScope&) = delete;
  HeapScope& operator=(const HeapScope&) = delete;

 private:
  Arena* saved_;
};

}  // namespace xgw::mem

#include "mem/spill.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/error.h"
#include "io/binio.h"
#include "mem/arena.h"
#include "mem/tracker.h"

namespace xgw::mem {

namespace {

std::size_t matrix_bytes(const ZMatrix& m) {
  return static_cast<std::size_t>(m.size()) * sizeof(cplx);
}

}  // namespace

SpillPool::SpillPool(std::string dir, std::size_t resident_budget_bytes,
                     std::string prefix)
    : dir_(std::move(dir)), prefix_(std::move(prefix)),
      budget_(resident_budget_bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  XGW_REQUIRE(!ec, "spill: cannot create spill directory: " + dir_ + " (" +
                       ec.message() + ")");
}

SpillPool::~SpillPool() {
  std::error_code ec;
  for (auto& [key, e] : entries_)
    if (e.on_disk) {
      tracker().on_free(Tag::kSpill, e.bytes);
      std::filesystem::remove(file_for(key), ec);
    }
}

std::string SpillPool::file_for(const std::string& key) const {
  return dir_ + "/" + prefix_ + key + ".xgw";
}

void SpillPool::touch(Entry& e, const std::string& key) {
  lru_.erase(e.lru);
  lru_.push_front(key);
  e.lru = lru_.begin();
}

void SpillPool::evict(const std::string& key, Entry& e) {
  const std::size_t bytes = e.bytes;
  if (!e.on_disk) {
    // First spill of this content. Entries are immutable between put()s
    // (and put resets on_disk), so a paged-in entry still matches its file
    // byte-for-byte — re-evicting it skips the write entirely.
    write_matrix(file_for(key), e.m);
    bytes_written_ += bytes;
    tracker().on_alloc(Tag::kSpill, bytes);  // bytes now live on disk
  }
  e.m = ZMatrix();
  e.resident = false;
  e.on_disk = true;
  lru_.erase(e.lru);
  resident_bytes_ -= bytes;
  ++evictions_;
}

void SpillPool::page_in(const std::string& key, Entry& e) {
  // Spilled matrices must come back on the tracked heap even when the
  // caller has an arena bound: a paged-in entry outlives any arena scope.
  HeapScope heap;
  e.m = read_matrix(file_for(key));
  e.resident = true;
  e.on_disk = true;  // keep the file; next eviction overwrites it
  lru_.push_front(key);
  e.lru = lru_.begin();
  resident_bytes_ += e.bytes;
  ++page_ins_;
  bytes_read_ += e.bytes;
  XGW_REQUIRE(matrix_bytes(e.m) == e.bytes,
              "spill: paged-in size mismatch for key " + key);
}

void SpillPool::make_room(std::size_t incoming_bytes, const Entry* keep) {
  while (resident_bytes_ + incoming_bytes > budget_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    Entry& e = entries_.at(victim);
    if (&e == keep) break;  // never evict the entry being served
    evict(victim, e);
  }
}

void SpillPool::put(const std::string& key, ZMatrix m) {
  const std::size_t bytes = matrix_bytes(m);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& e = it->second;
    if (e.resident) {
      resident_bytes_ -= e.bytes;
      lru_.erase(e.lru);
    }
    if (e.on_disk) tracker().on_free(Tag::kSpill, e.bytes);
    e = Entry{};
  }
  make_room(bytes, nullptr);
  Entry& e = entries_[key];
  {
    // The stored copy lives for the pool's lifetime: force it off any
    // bound arena. (A move would carry arena-backed storage along.)
    HeapScope heap;
    e.m = m;
  }
  e.resident = true;
  e.on_disk = false;
  e.bytes = bytes;
  lru_.push_front(key);
  e.lru = lru_.begin();
  resident_bytes_ += bytes;
}

const ZMatrix& SpillPool::get(const std::string& key) {
  auto it = entries_.find(key);
  XGW_REQUIRE(it != entries_.end(), "spill: no such entry: " + key);
  Entry& e = it->second;
  if (!e.resident) {
    make_room(e.bytes, &e);
    page_in(key, e);
  } else {
    touch(e, key);
  }
  return e.m;
}

ZMatrix SpillPool::take(const std::string& key) {
  auto it = entries_.find(key);
  XGW_REQUIRE(it != entries_.end(), "spill: no such entry: " + key);
  Entry& e = it->second;
  if (!e.resident) {
    make_room(e.bytes, &e);
    page_in(key, e);
  } else {
    lru_.erase(e.lru);
  }
  resident_bytes_ -= e.bytes;
  if (e.on_disk) {
    tracker().on_free(Tag::kSpill, e.bytes);
    std::error_code ec;
    std::filesystem::remove(file_for(key), ec);
  }
  ZMatrix out = std::move(e.m);
  entries_.erase(it);
  return out;
}

bool SpillPool::contains(const std::string& key) const {
  return entries_.count(key) != 0;
}

void MatrixStore::enable_spill(const std::string& dir,
                               std::size_t resident_budget_bytes,
                               const std::string& prefix) {
  XGW_REQUIRE(pool_ == nullptr, "MatrixStore: spill already enabled");
  pool_ = std::make_unique<SpillPool>(dir, resident_budget_bytes, prefix);
  for (idx i = 0; i < n_; ++i)
    pool_->put(key(i), std::move(in_core_[static_cast<std::size_t>(i)]));
  in_core_.clear();
  in_core_.shrink_to_fit();
}

void MatrixStore::push_back(ZMatrix m) {
  if (pool_) {
    pool_->put(key(n_), std::move(m));
  } else {
    HeapScope heap;
    in_core_.push_back(m);
  }
  ++n_;
}

void MatrixStore::set(idx i, ZMatrix m) {
  XGW_REQUIRE(i >= 0 && i < n_, "MatrixStore: index out of range");
  if (pool_) {
    pool_->put(key(i), std::move(m));
  } else {
    HeapScope heap;
    in_core_[static_cast<std::size_t>(i)] = m;
  }
}

const ZMatrix& MatrixStore::get(idx i) const {
  XGW_REQUIRE(i >= 0 && i < n_, "MatrixStore: index out of range");
  if (pool_) return pool_->get(key(i));
  return in_core_[static_cast<std::size_t>(i)];
}

}  // namespace xgw::mem

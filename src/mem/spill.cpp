#include "mem/spill.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "io/binio.h"
#include "io/iohooks.h"
#include "mem/arena.h"
#include "mem/tracker.h"
#include "obs/metrics.h"

namespace xgw::mem {

namespace {

std::size_t matrix_bytes(const ZMatrix& m) {
  return static_cast<std::size_t>(m.size()) * sizeof(cplx);
}

std::atomic<SpillVerify> g_verify{SpillVerify::kSize};

void publish_recovered(ErrorKind k) {
  obs::metrics()
      .counter(std::string("fault/io/recovered/") +
               io::recovered_fault_name(k))
      .inc();
}

}  // namespace

const char* to_string(SpillVerify v) {
  switch (v) {
    case SpillVerify::kOff:
      return "off";
    case SpillVerify::kSize:
      return "size";
    case SpillVerify::kChecksum:
      return "checksum";
  }
  return "unknown";
}

SpillVerify parse_spill_verify(const std::string& s) {
  if (s == "off") return SpillVerify::kOff;
  if (s == "size") return SpillVerify::kSize;
  if (s == "checksum") return SpillVerify::kChecksum;
  throw Error("spill_verify must be 'off', 'size' or 'checksum', got '" + s +
                  "'",
              ErrorKind::kValidation);
}

void set_spill_verify(SpillVerify v) noexcept {
  g_verify.store(v, std::memory_order_relaxed);
}

SpillVerify spill_verify() noexcept {
  return g_verify.load(std::memory_order_relaxed);
}

SpillPool::SpillPool(std::string dir, std::size_t resident_budget_bytes,
                     std::string prefix)
    : dir_(std::move(dir)), prefix_(std::move(prefix)),
      budget_(resident_budget_bytes), verify_(spill_verify()) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  XGW_REQUIRE(!ec, "spill: cannot create spill directory: " + dir_ + " (" +
                       ec.message() + ")");
}

SpillPool::~SpillPool() {
  std::error_code ec;
  for (auto& [key, e] : entries_)
    if (e.on_disk) {
      tracker().on_free(Tag::kSpill, e.bytes);
      std::filesystem::remove(file_for(key), ec);
    }
}

std::string SpillPool::file_for(const std::string& key) const {
  return dir_ + "/" + prefix_ + key + ".xgw";
}

void SpillPool::touch(Entry& e, const std::string& key) {
  lru_.erase(e.lru);
  lru_.push_front(key);
  e.lru = lru_.begin();
}

// Writes e.m to its spill file and proves the file good under the pool's
// verification mode BEFORE the caller releases the in-memory copy — the
// eviction-ordering invariant. A rejected write is redone (bounded); a
// persistent failure (ENOSPC, exhausted retries, verification that never
// passes) returns false WITHOUT touching e.m, and the pool degrades to
// in-core operation: results stay bitwise correct, the budget is knowingly
// exceeded.
bool SpillPool::write_verified(const std::string& key, const Entry& e) {
  const std::string file = file_for(key);
  constexpr int kMaxWriteRounds = 4;
  std::vector<ErrorKind> failed_kinds;
  for (int round = 0; round < kMaxWriteRounds; ++round) {
    try {
      write_matrix(file, e.m);
      bool ok = true;
      ErrorKind bad = ErrorKind::kGeneric;
      if (verify_ == SpillVerify::kSize) {
        std::error_code ec;
        const auto sz = std::filesystem::file_size(file, ec);
        if (ec || sz != matrix_file_bytes(e.m.rows(), e.m.cols())) {
          ok = false;
          bad = ErrorKind::kIoTruncated;
        }
      } else if (verify_ == SpillVerify::kChecksum) {
        try {
          HeapScope heap;
          const ZMatrix back = read_matrix(file);
          if (back.rows() != e.m.rows() || back.cols() != e.m.cols() ||
              std::memcmp(back.data(), e.m.data(), e.bytes) != 0) {
            ok = false;
            bad = ErrorKind::kIoCorrupt;
          }
        } catch (const Error& err) {
          if (err.kind() == ErrorKind::kGeneric) throw;
          ok = false;
          bad = err.kind();
        }
      }
      if (ok) {
        // Every rejected round was a survived silent-corruption event.
        rewrites_ += failed_kinds.size();
        for (ErrorKind k : failed_kinds) {
          obs::metrics().counter("spill/rewrites").inc();
          publish_recovered(k);
        }
        return true;
      }
      failed_kinds.push_back(bad);
    } catch (const Error& err) {
      // The write itself failed past the retry layer (injected ENOSPC, or
      // exhausted transient retries). Degrade rather than die. Earlier
      // verify-rejected rounds were survived too (their bad bytes were
      // discarded), so they count as recovered alongside this failure.
      log_warn("spill: cannot write ", file, " (", e.bytes,
               " payload bytes): ", err.what(),
               " -- pool degrades to in-core operation");
      for (ErrorKind k : failed_kinds) publish_recovered(k);
      publish_recovered(err.kind());
      return false;
    }
  }
  log_warn("spill: eviction write of ", file, " (", e.bytes,
           " payload bytes) failed ", to_string(verify_),
           " verification ", kMaxWriteRounds,
           " times -- pool degrades to in-core operation");
  for (ErrorKind k : failed_kinds) publish_recovered(k);
  return false;
}

bool SpillPool::evict(const std::string& key, Entry& e) {
  const std::size_t bytes = e.bytes;
  if (!e.on_disk) {
    // First spill of this content. Entries are immutable between put()s
    // (and put resets on_disk), so a paged-in entry still matches its file
    // byte-for-byte — re-evicting it skips the write entirely.
    if (!write_verified(key, e)) {
      degraded_ = true;
      obs::metrics().counter("spill/degraded").inc();
      return false;  // in-memory copy untouched: still the only good copy
    }
    bytes_written_ += bytes;
    tracker().on_alloc(Tag::kSpill, bytes);  // bytes now live on disk
  }
  e.m = ZMatrix();
  e.resident = false;
  e.on_disk = true;
  lru_.erase(e.lru);
  resident_bytes_ -= bytes;
  ++evictions_;
  return true;
}

void SpillPool::page_in(const std::string& key, Entry& e) {
  // Spilled matrices must come back on the tracked heap even when the
  // caller has an arena bound: a paged-in entry outlives any arena scope.
  HeapScope heap;
  bool rematerialized = false;
  try {
    e.m = read_matrix(file_for(key));
  } catch (const Error& err) {
    if (err.kind() == ErrorKind::kGeneric || !recompute_) throw;
    // The disk copy is gone (torn page, at-rest flip, dead device past the
    // retry budget) but the content is a pure function of upstream data:
    // re-derive it instead of killing the campaign. Determinism of the
    // callback keeps the run bitwise identical to the fault-free one.
    log_warn("spill: page-in of ", file_for(key), " failed (", err.what(),
             ") -- re-materializing key ", key);
    e.m = recompute_(key);
    XGW_REQUIRE(matrix_bytes(e.m) == e.bytes,
                "spill: re-materialized matrix for key " + key +
                    " has wrong size");
    ++rematerializations_;
    obs::metrics().counter("spill/rematerializations").inc();
    publish_recovered(err.kind());
    // Drop the bad file: the entry is dirty again and re-evicts via a
    // fresh verified write.
    tracker().on_free(Tag::kSpill, e.bytes);
    std::error_code ec;
    std::filesystem::remove(file_for(key), ec);
    rematerialized = true;
  }
  e.resident = true;
  e.on_disk = !rematerialized;  // keep the file; next eviction overwrites it
  lru_.push_front(key);
  e.lru = lru_.begin();
  resident_bytes_ += e.bytes;
  ++page_ins_;
  bytes_read_ += e.bytes;
  XGW_REQUIRE(matrix_bytes(e.m) == e.bytes,
              "spill: paged-in size mismatch for key " + key);
}

void SpillPool::make_room(std::size_t incoming_bytes, const Entry* keep) {
  if (degraded_) return;  // eviction disabled: stay in-core
  while (resident_bytes_ + incoming_bytes > budget_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    Entry& e = entries_.at(victim);
    if (&e == keep) break;  // never evict the entry being served
    if (!evict(victim, e)) break;  // pool just degraded
  }
}

void SpillPool::put(const std::string& key, ZMatrix m) {
  const std::size_t bytes = matrix_bytes(m);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& e = it->second;
    if (e.resident) {
      resident_bytes_ -= e.bytes;
      lru_.erase(e.lru);
    }
    if (e.on_disk) tracker().on_free(Tag::kSpill, e.bytes);
    e = Entry{};
  }
  make_room(bytes, nullptr);
  Entry& e = entries_[key];
  {
    // The stored copy lives for the pool's lifetime: force it off any
    // bound arena. (A move would carry arena-backed storage along.)
    HeapScope heap;
    e.m = m;
  }
  e.resident = true;
  e.on_disk = false;
  e.bytes = bytes;
  lru_.push_front(key);
  e.lru = lru_.begin();
  resident_bytes_ += bytes;
}

const ZMatrix& SpillPool::get(const std::string& key) {
  auto it = entries_.find(key);
  XGW_REQUIRE(it != entries_.end(), "spill: no such entry: " + key);
  Entry& e = it->second;
  if (!e.resident) {
    make_room(e.bytes, &e);
    page_in(key, e);
  } else {
    touch(e, key);
  }
  return e.m;
}

ZMatrix SpillPool::take(const std::string& key) {
  auto it = entries_.find(key);
  XGW_REQUIRE(it != entries_.end(), "spill: no such entry: " + key);
  Entry& e = it->second;
  if (!e.resident) {
    make_room(e.bytes, &e);
    page_in(key, e);
  } else {
    lru_.erase(e.lru);
  }
  resident_bytes_ -= e.bytes;
  if (e.on_disk) {
    tracker().on_free(Tag::kSpill, e.bytes);
    std::error_code ec;
    std::filesystem::remove(file_for(key), ec);
  }
  ZMatrix out = std::move(e.m);
  entries_.erase(it);
  return out;
}

bool SpillPool::contains(const std::string& key) const {
  return entries_.count(key) != 0;
}

void MatrixStore::enable_spill(const std::string& dir,
                               std::size_t resident_budget_bytes,
                               const std::string& prefix) {
  XGW_REQUIRE(pool_ == nullptr, "MatrixStore: spill already enabled");
  pool_ = std::make_unique<SpillPool>(dir, resident_budget_bytes, prefix);
  if (recompute_) {
    auto fn = recompute_;
    pool_->set_recompute(
        [fn](const std::string& k) { return fn(std::stoll(k)); });
  }
  for (idx i = 0; i < n_; ++i)
    pool_->put(key(i), std::move(in_core_[static_cast<std::size_t>(i)]));
  in_core_.clear();
  in_core_.shrink_to_fit();
}

void MatrixStore::set_recompute(std::function<ZMatrix(idx)> fn) {
  recompute_ = std::move(fn);
  if (pool_) {
    auto f = recompute_;
    pool_->set_recompute(
        [f](const std::string& k) { return f(std::stoll(k)); });
  }
}

void MatrixStore::push_back(ZMatrix m) {
  if (pool_) {
    pool_->put(key(n_), std::move(m));
  } else {
    HeapScope heap;
    in_core_.push_back(m);
  }
  ++n_;
}

void MatrixStore::set(idx i, ZMatrix m) {
  XGW_REQUIRE(i >= 0 && i < n_, "MatrixStore: index out of range");
  if (pool_) {
    pool_->put(key(i), std::move(m));
  } else {
    HeapScope heap;
    in_core_[static_cast<std::size_t>(i)] = m;
  }
}

const ZMatrix& MatrixStore::get(idx i) const {
  XGW_REQUIRE(i >= 0 && i < n_, "MatrixStore: index out of range");
  if (pool_) return pool_->get(key(i));
  return in_core_[static_cast<std::size_t>(i)];
}

}  // namespace xgw::mem

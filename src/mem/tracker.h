#pragma once

// Tracked allocation layer — the accounting half of the memory subsystem.
//
// The paper's NV-Block CHI_SUM exists because polarizability workspace is
// memory-bounded per GPU (Sec. 5.2): under a fixed HBM budget the O(N^3)
// pair workspace must be blocked over N_v. Planning against a budget is
// only honest when the actual footprint is measured, so every ZMatrix
// (la/matrix) and FFT workspace (fft) allocates through TrackedAllocator,
// which maintains per-tag byte counters and high-water marks in MemTracker.
//
// Cost: one relaxed fetch_add plus a relaxed CAS-max per allocation — a few
// nanoseconds, paid only when a container actually touches the heap. Hot
// kernels pre-allocate (and, with mem/arena bound, stop touching the heap
// entirely), so the tracker adds nothing to inner loops.
//
// The tracker feeds three consumers:
//  * obs::Span samples it on close, giving the run report a per-stage
//    peak_bytes column;
//  * obs gauges (mem/current_bytes, mem/peak_bytes, per-tag peaks) via
//    obs::record_mem_gauges();
//  * mem::Planner validation — bench_nvblock and test_mem compare the
//    planner's predicted peak against the measured high-water mark.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace xgw::mem {

/// Fixed allocation tags: a closed set keeps the per-tag counters as plain
/// atomic arrays (no registration, no locks, safe during static teardown).
enum class Tag : int {
  kMatrix = 0,     ///< la/matrix dense storage (the bulk of every run)
  kFft,            ///< FFT plans and per-thread transform workspaces
  kArena,          ///< workspace arena slabs (mem/arena)
  kSpill,          ///< spill pool resident matrices (mem/spill)
  kCheckpoint,     ///< checkpoint payload buffers (runtime/checkpoint)
  kOther,          ///< everything else routed through TrackedAllocator
  kCount
};

inline constexpr int kTagCount = static_cast<int>(Tag::kCount);

const char* tag_name(Tag t);

/// Per-tag snapshot (relaxed reads: live-process scrape semantics).
struct TagStats {
  std::uint64_t current_bytes = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t alloc_calls = 0;
  std::uint64_t free_calls = 0;
};

class MemTracker {
 public:
  void on_alloc(Tag t, std::size_t bytes) noexcept {
    const auto i = static_cast<std::size_t>(t);
    bump(current_[i], peak_[i], bytes);
    bump(total_current_, total_peak_, bytes);
    allocs_[i].fetch_add(1, std::memory_order_relaxed);
    total_allocs_.fetch_add(1, std::memory_order_relaxed);
  }

  void on_free(Tag t, std::size_t bytes) noexcept {
    const auto i = static_cast<std::size_t>(t);
    current_[i].fetch_sub(bytes, std::memory_order_relaxed);
    total_current_.fetch_sub(bytes, std::memory_order_relaxed);
    frees_[i].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t current_bytes() const noexcept {
    return total_current_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak_bytes() const noexcept {
    return total_peak_.load(std::memory_order_relaxed);
  }
  /// Heap allocation count across all tags — what the zero-allocation
  /// inner-loop assertions in tests measure. Arena-sourced allocations do
  /// not bump this (they touch no heap).
  std::uint64_t alloc_calls() const noexcept {
    return total_allocs_.load(std::memory_order_relaxed);
  }

  TagStats tag(Tag t) const noexcept {
    const auto i = static_cast<std::size_t>(t);
    TagStats s;
    s.current_bytes = current_[i].load(std::memory_order_relaxed);
    s.peak_bytes = peak_[i].load(std::memory_order_relaxed);
    s.alloc_calls = allocs_[i].load(std::memory_order_relaxed);
    s.free_calls = frees_[i].load(std::memory_order_relaxed);
    return s;
  }

  /// Re-arms every high-water mark at the current level so a bench/test can
  /// measure the peak of one phase in isolation. Call from quiescent code
  /// only (like FlopCounter::reset and MetricsRegistry::clear).
  void reset_peak() noexcept {
    for (int i = 0; i < kTagCount; ++i)
      peak_[static_cast<std::size_t>(i)].store(
          current_[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed),
          std::memory_order_relaxed);
    total_peak_.store(total_current_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }

  /// Human-readable one-line-per-tag summary (diagnostics / run logs).
  std::string summary() const;

  /// Process-wide tracker. Members are trivially destructible, so use
  /// during static teardown is safe.
  static MemTracker& global() noexcept;

 private:
  static void bump(std::atomic<std::uint64_t>& cur,
                   std::atomic<std::uint64_t>& peak,
                   std::size_t bytes) noexcept {
    const std::uint64_t now =
        cur.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::uint64_t p = peak.load(std::memory_order_relaxed);
    while (now > p &&
           !peak.compare_exchange_weak(p, now, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kTagCount> current_{};
  std::array<std::atomic<std::uint64_t>, kTagCount> peak_{};
  std::array<std::atomic<std::uint64_t>, kTagCount> allocs_{};
  std::array<std::atomic<std::uint64_t>, kTagCount> frees_{};
  std::atomic<std::uint64_t> total_current_{0};
  std::atomic<std::uint64_t> total_peak_{0};
  std::atomic<std::uint64_t> total_allocs_{0};
};

/// Shorthand for MemTracker::global().
inline MemTracker& tracker() noexcept { return MemTracker::global(); }

class Arena;

/// The calling thread's innermost bound arena (nullptr when none) and the
/// binding-stack walker used by deallocation. Defined in mem/arena.cpp.
Arena* current_arena() noexcept;
Arena* owning_arena(const void* p) noexcept;

/// Arena routing policy for TrackedAllocator. Containers whose lifetime can
/// exceed an arena scope (thread_local FFT workspaces, caches) must use
/// kNeverArena so they never hold arena-backed storage.
enum class Route { kArenaWhenBound, kNeverArena };

void* tracked_arena_alloc(std::size_t bytes, std::size_t align) noexcept;
bool tracked_arena_free(void* p, std::size_t bytes) noexcept;

/// std-compatible allocator: heap allocations are counted in MemTracker
/// under `T_tag`; when a mem::Arena is bound to the calling thread (and the
/// route allows it) storage comes from the arena instead — no heap, no
/// counter bump, released wholesale at the arena mark.
template <typename T, Tag T_tag = Tag::kOther,
          Route T_route = Route::kArenaWhenBound>
struct TrackedAllocator {
  using value_type = T;

  TrackedAllocator() noexcept = default;
  template <typename U>
  TrackedAllocator(const TrackedAllocator<U, T_tag, T_route>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if constexpr (T_route == Route::kArenaWhenBound) {
      if (void* p = tracked_arena_alloc(bytes, alignof(T)))
        return static_cast<T*>(p);
    }
    tracker().on_alloc(T_tag, bytes);
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = n * sizeof(T);
    if constexpr (T_route == Route::kArenaWhenBound) {
      if (tracked_arena_free(p, bytes)) return;
    }
    tracker().on_free(T_tag, bytes);
    ::operator delete(p);
  }

  template <typename U>
  struct rebind {
    using other = TrackedAllocator<U, T_tag, T_route>;
  };

  friend bool operator==(const TrackedAllocator&,
                         const TrackedAllocator&) noexcept {
    return true;
  }
};

}  // namespace xgw::mem

#include "mem/tracker.h"

#include <cstdio>

namespace xgw::mem {

const char* tag_name(Tag t) {
  switch (t) {
    case Tag::kMatrix:
      return "la/matrix";
    case Tag::kFft:
      return "fft";
    case Tag::kArena:
      return "mem/arena";
    case Tag::kSpill:
      return "mem/spill";
    case Tag::kCheckpoint:
      return "runtime/checkpoint";
    case Tag::kOther:
      return "other";
    case Tag::kCount:
      break;
  }
  return "?";
}

MemTracker& MemTracker::global() noexcept {
  static MemTracker t;
  return t;
}

std::string MemTracker::summary() const {
  std::string out = "memory tracker (bytes):\n";
  char line[160];
  for (int i = 0; i < kTagCount; ++i) {
    const Tag t = static_cast<Tag>(i);
    const TagStats s = tag(t);
    if (s.alloc_calls == 0 && s.current_bytes == 0) continue;
    std::snprintf(line, sizeof(line),
                  "  %-20s current %12llu   peak %12llu   allocs %10llu\n",
                  tag_name(t),
                  static_cast<unsigned long long>(s.current_bytes),
                  static_cast<unsigned long long>(s.peak_bytes),
                  static_cast<unsigned long long>(s.alloc_calls));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  %-20s current %12llu   peak %12llu   allocs %10llu\n",
                "TOTAL", static_cast<unsigned long long>(current_bytes()),
                static_cast<unsigned long long>(peak_bytes()),
                static_cast<unsigned long long>(alloc_calls()));
  out += line;
  return out;
}

}  // namespace xgw::mem

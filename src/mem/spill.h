#pragma once

// Out-of-core spill — graceful degradation when the planner says the
// problem does not fit (MemPlan::needs_spill).
//
// A SpillPool is an LRU cache of named ZMatrix entries with a resident-byte
// budget. Inserting past the budget evicts the least-recently-used entries
// to disk through io/binio (whose format carries an FNV-1a checksum, so
// every page-in is verified); touching a spilled entry reads it back.
// Because binio round-trips are byte-exact, a run that pages through the
// pool produces BITWISE identical results to the in-core run — the CI
// out-of-core smoke job diffs QP energies for equality, not tolerance.
//
// MatrixStore is the call-site facade: an indexed sequence of matrices
// (ε^{-1} per frequency, FF screening coefficient matrices) that is a plain
// vector until `enable_spill` is called, after which it pages through a
// SpillPool transparently. References returned by get() are valid only
// until the next store operation when spill is enabled.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "la/matrix.h"

namespace xgw::mem {

/// How an eviction write is verified BEFORE the in-memory copy is released.
/// The eviction-ordering invariant — never drop the only copy until the
/// disk copy is proven good — is what makes spill safe under torn writes
/// and silent corruption (storage-fault chaos, runtime/fault.h).
enum class SpillVerify : std::uint8_t {
  kOff = 0,   ///< trust the write (seed behavior)
  kSize,      ///< file size must match the expected encoded size (cheap,
              ///< catches torn writes; silent flips surface at page-in)
  kChecksum,  ///< full read-back + bitwise compare (catches everything)
};

const char* to_string(SpillVerify v);
/// Parses "off" | "size" | "checksum" (the driver's `spill_verify` key);
/// throws a kValidation Error on anything else.
SpillVerify parse_spill_verify(const std::string& s);

/// Process-wide default picked up by every new SpillPool (overridable per
/// pool with set_verify). Seed default: kSize.
void set_spill_verify(SpillVerify v) noexcept;
SpillVerify spill_verify() noexcept;

class SpillPool {
 public:
  /// `dir` is created if missing; spill files live under it as
  /// `<prefix><key>.xgw` and are removed by the destructor.
  SpillPool(std::string dir, std::size_t resident_budget_bytes,
            std::string prefix = "spill_");
  ~SpillPool();

  SpillPool(const SpillPool&) = delete;
  SpillPool& operator=(const SpillPool&) = delete;

  /// Inserts (or replaces) an entry, then evicts LRU entries until the
  /// resident total is back under budget. The inserted entry itself is
  /// never evicted by its own put (the caller holds no reference yet, but
  /// a pool must always admit its newest matrix even if it alone exceeds
  /// the budget).
  void put(const std::string& key, ZMatrix m);

  /// Returns the entry, paging it in from disk if it was evicted (and
  /// possibly evicting others to make room). The reference is valid until
  /// the next put/get/take on this pool.
  const ZMatrix& get(const std::string& key);

  /// Removes the entry from the pool and returns it (paging in if needed).
  ZMatrix take(const std::string& key);

  bool contains(const std::string& key) const;

  /// Eviction-write verification mode for THIS pool (defaults to the
  /// process-wide spill_verify() at construction).
  void set_verify(SpillVerify v) noexcept { verify_ = v; }
  SpillVerify verify() const noexcept { return verify_; }

  /// Registers a recompute callback: when a page-in fails with persistent
  /// corruption (torn spill file, at-rest bit flip), the pool re-derives
  /// the matrix from scratch instead of dying. The callback must be
  /// deterministic and bitwise-reproducible for the bit-exactness guarantee
  /// to survive re-materialization.
  void set_recompute(std::function<ZMatrix(const std::string& key)> fn) {
    recompute_ = std::move(fn);
  }

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t resident_bytes() const noexcept { return resident_bytes_; }
  std::size_t budget_bytes() const noexcept { return budget_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t page_ins() const noexcept { return page_ins_; }
  std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  std::uint64_t bytes_read() const noexcept { return bytes_read_; }
  /// Entries re-derived by the recompute callback after corrupt page-ins.
  std::uint64_t rematerializations() const noexcept {
    return rematerializations_;
  }
  /// Eviction writes redone because verification rejected the file.
  std::uint64_t rewrites() const noexcept { return rewrites_; }
  /// True once the pool stopped evicting (ENOSPC / persistent write
  /// failure): everything stays resident, results stay correct, the memory
  /// budget is knowingly exceeded.
  bool degraded() const noexcept { return degraded_; }

  const std::string& dir() const noexcept { return dir_; }

 private:
  struct Entry {
    ZMatrix m;                    // empty when evicted to disk
    bool resident = false;
    bool on_disk = false;
    std::size_t bytes = 0;        // payload bytes when resident
    std::list<std::string>::iterator lru;  // valid only when resident
  };

  std::string file_for(const std::string& key) const;
  void touch(Entry& e, const std::string& key);
  void make_room(std::size_t incoming_bytes, const Entry* keep);
  bool evict(const std::string& key, Entry& e);
  bool write_verified(const std::string& key, const Entry& e);
  void page_in(const std::string& key, Entry& e);

  std::string dir_;
  std::string prefix_;
  std::size_t budget_ = 0;
  std::size_t resident_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t page_ins_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t rematerializations_ = 0;
  std::uint64_t rewrites_ = 0;
  bool degraded_ = false;
  SpillVerify verify_ = SpillVerify::kSize;
  std::function<ZMatrix(const std::string&)> recompute_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
};

/// Indexed matrix sequence that is in-core by default and pages through a
/// SpillPool once `enable_spill` is called. push_back/get/set mirror the
/// std::vector<ZMatrix> it replaces at the call sites.
class MatrixStore {
 public:
  MatrixStore() = default;

  /// Switches the store to spill mode. Existing entries migrate into the
  /// pool. Must be called before (or between) accesses, not concurrently.
  void enable_spill(const std::string& dir, std::size_t resident_budget_bytes,
                    const std::string& prefix = "store_");

  bool spilling() const noexcept { return pool_ != nullptr; }

  void push_back(ZMatrix m);
  void set(idx i, ZMatrix m);

  /// Valid until the next store operation when spilling; stable otherwise.
  const ZMatrix& get(idx i) const;

  /// Indexed recompute callback for corrupt-page-in re-materialization;
  /// may be called before or after enable_spill. See SpillPool.
  void set_recompute(std::function<ZMatrix(idx i)> fn);

  idx size() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  const SpillPool* pool() const noexcept { return pool_.get(); }
  SpillPool* mutable_pool() noexcept { return pool_.get(); }

 private:
  std::string key(idx i) const { return std::to_string(i); }

  std::vector<ZMatrix> in_core_;
  std::unique_ptr<SpillPool> pool_;
  std::function<ZMatrix(idx)> recompute_;
  idx n_ = 0;
};

}  // namespace xgw::mem

#include "mem/planner.h"

#include <algorithm>

#include "common/error.h"
#include "common/types.h"

namespace xgw::mem {

namespace {

constexpr std::size_t kElem = sizeof(cplx);

double to_mb(std::size_t b) {
  return static_cast<double>(b) / (1024.0 * 1024.0);
}

std::size_t epsinv_set_bytes(const PlannerInput& in) {
  return static_cast<std::size_t>(in.nfreq) *
         static_cast<std::size_t>(in.ng) * static_cast<std::size_t>(in.ng) *
         kElem;
}

}  // namespace

std::size_t chi_workspace_bytes(const PlannerInput& in, idx nv_block,
                                idx freq_batch) {
  // Mirrors the allocations of chi_multi (core/chi.cpp) one for one.
  const auto nc = static_cast<std::size_t>(in.nc);
  const auto ng = static_cast<std::size_t>(in.ng);
  const auto ncols = static_cast<std::size_t>(in.ncols > 0 ? in.ncols : in.ng);
  const auto nvb = static_cast<std::size_t>(std::max<idx>(1, nv_block));
  const auto fb = static_cast<std::size_t>(std::max<idx>(1, freq_batch));
  // One scaled-M workspace per team member; the frequency loop only forms a
  // team when it has more than one frequency to distribute.
  const auto nthreads =
      fb > 1 ? static_cast<std::size_t>(std::max(1, in.threads)) : 1;

  std::size_t b = 0;
  b += fb * ncols * ncols * kElem;        // chi accumulators (the results)
  // m_pw: per-valence M rows; under a subspace (ncols < ng) the whole
  // valence block is held at once for the batched Transf projection.
  b += (ncols < ng ? nvb : 1) * nc * ng * kElem;
  b += nvb * nc * ncols * kElem;          // m_block: NV-Block pair workspace
  b += nthreads * nvb * nc * ncols * kElem;  // per-thread scaled copies
  b += nc * sizeof(idx);                  // conduction band list
  return b;
}

std::size_t epsilon_step_arena_bytes(idx ng, idx nv, idx nc, int threads) {
  PlannerInput in;
  in.nv = nv;
  in.nc = nc;
  in.ng = ng;
  in.ncols = ng;
  in.threads = threads;
  // chi at one frequency with the full valence block, plus the dense
  // inversion chain: eps = I - v chi, the LU copy, and the inverse.
  const std::size_t ng2 =
      static_cast<std::size_t>(ng) * static_cast<std::size_t>(ng) * kElem;
  return chi_workspace_bytes(in, nv, 1) + 3 * ng2 +
         static_cast<std::size_t>(ng) * sizeof(idx) + (64 << 10);
}

std::string MemPlan::describe() const {
  std::string s = "nv_block=" + std::to_string(nv_block) +
                  " freq_batch=" + std::to_string(freq_batch);
  if (gprime_slice > 0)
    s += " gprime_slice=" + std::to_string(gprime_slice);
  char buf[64];
  std::snprintf(buf, sizeof(buf), " planned_peak_mb=%.1f",
                to_mb(planned_peak_bytes));
  s += buf;
  if (fits_in_core) s += " (in-core, no blocking)";
  if (needs_spill) {
    std::snprintf(buf, sizeof(buf), " spill_resident_mb=%.1f",
                  to_mb(spill_resident_bytes));
    s += " + out-of-core spill";
    s += buf;
  }
  return s;
}

MemPlan plan(const PlannerInput& in) {
  XGW_REQUIRE(in.nv >= 1 && in.nc >= 1 && in.ng >= 1,
              "mem::plan: need nv, nc, ng >= 1");
  XGW_REQUIRE(in.nfreq >= 1, "mem::plan: need nfreq >= 1");
  MemPlan p;

  const std::size_t unblocked =
      in.fixed_bytes + chi_workspace_bytes(in, in.nv, in.nfreq);

  // No budget, or everything fits: the no-blocking fast path (monolithic
  // pair block, all frequencies in one CHI-Freq pass).
  if (in.budget_bytes == 0 || unblocked <= in.budget_bytes) {
    p.nv_block = in.nv;
    p.freq_batch = in.nfreq;
    p.fits_in_core = true;
    p.planned_peak_bytes = unblocked;
    return p;
  }

  auto total_at = [&](idx nvb, idx fb) {
    return in.fixed_bytes + chi_workspace_bytes(in, nvb, fb);
  };

  const std::size_t minimal = total_at(1, 1);
  if (minimal > in.budget_bytes) {
    if (!in.allow_spill) {
      throw Error(
          "mem::plan: memory budget " +
          std::to_string(static_cast<long long>(to_mb(in.budget_bytes))) +
          " MB is below the minimal CHI working set " +
          std::to_string(static_cast<long long>(to_mb(minimal) + 1.0)) +
          " MB (nv_block=1, freq_batch=1, N_c=" + std::to_string(in.nc) +
          ", N_G=" + std::to_string(in.ng) +
          "); raise memory_budget_mb to at least that, shrink the basis, or "
          "allow out-of-core spill");
    }
    p.nv_block = 1;
    p.freq_batch = 1;
    p.needs_spill = true;
    p.planned_peak_bytes = minimal;
    p.spill_resident_bytes = std::max<std::size_t>(
        static_cast<std::size_t>(in.ng) * static_cast<std::size_t>(in.ng) *
            kElem,
        in.budget_bytes / 2);
    return p;
  }

  // Maximize the frequency batch first (each extra CHI-Freq PASS re-pays
  // MTXEL/Transf), then grow nv_block into the remaining budget (bigger
  // rank-k updates). Both are monotonic in bytes, so binary search.
  idx fb_lo = 1, fb_hi = in.nfreq;
  while (fb_lo < fb_hi) {
    const idx mid = fb_lo + (fb_hi - fb_lo + 1) / 2;
    if (total_at(1, mid) <= in.budget_bytes)
      fb_lo = mid;
    else
      fb_hi = mid - 1;
  }
  p.freq_batch = fb_lo;

  idx nv_lo = 1, nv_hi = in.nv;
  while (nv_lo < nv_hi) {
    const idx mid = nv_lo + (nv_hi - nv_lo + 1) / 2;
    if (total_at(mid, p.freq_batch) <= in.budget_bytes)
      nv_lo = mid;
    else
      nv_hi = mid - 1;
  }
  p.nv_block = nv_lo;
  p.planned_peak_bytes = total_at(p.nv_block, p.freq_batch);

  // The full ε^{-1}(ω) frequency set is a PRODUCT, not workspace: when it
  // cannot sit alongside the working set, the run pages it via mem/spill.
  if (in.nfreq > 1) {
    const std::size_t leftover = in.budget_bytes - p.planned_peak_bytes;
    if (epsinv_set_bytes(in) > leftover) {
      p.needs_spill = true;
      p.spill_resident_bytes = std::max<std::size_t>(
          static_cast<std::size_t>(in.ng) * static_cast<std::size_t>(in.ng) *
              kElem,
          leftover);
    }
  }

  // Sigma FF off-diagonal G'-slice: bound the per-slice gather + scratch
  // (bv_cols N_G x w, mn_cols and t N_Sigma x w — see sigma_ff_offdiag) to
  // the leftover budget; 0 means the full width fits (unsliced).
  if (in.n_sigma > 0) {
    const std::size_t leftover =
        in.budget_bytes > p.planned_peak_bytes
            ? in.budget_bytes - p.planned_peak_bytes
            : 0;
    const std::size_t per_col =
        (static_cast<std::size_t>(in.ng) +
         2 * static_cast<std::size_t>(in.n_sigma)) *
        kElem;
    idx slice = static_cast<idx>(leftover / per_col);
    slice = std::clamp<idx>(slice, 64, in.ng);
    p.gprime_slice = slice >= in.ng ? 0 : slice;
  }
  return p;
}

}  // namespace xgw::mem

#pragma once

// Job driver for xgw_run: builds the system described by an InputFile and
// executes the requested stage of the GW workflow (Fig. 1 of the paper),
// mirroring BerkeleyGW's executable-per-stage layout:
//
//   job bands        — mean-field band structure along L-Gamma-X
//   job epsilon      — chi(0), eps^{-1}(0); optional epsmat/WFN output files
//   job sigma        — GPP QP energies for sigma_bands
//   job sigma_offdiag— full Sigma matrix + Dyson solve
//   job ff           — full-frequency QP energies
//   job cohsex       — static COHSEX
//   job evgw         — eigenvalue-self-consistent GW
//   job rpa          — RPA correlation energy
//   job bse          — exciton spectrum + absorption
//   job gwpt         — electron-phonon coupling for all displacements
//
// Returns 0 on success; all output goes to the provided stream.

#include <iosfwd>

#include "cli/input.h"

namespace xgw {

/// The full list of keys xgw_run accepts (used to reject typos).
const std::vector<std::string>& known_input_keys();

int run_job(const InputFile& in, std::ostream& os);

}  // namespace xgw

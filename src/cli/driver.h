#pragma once

// Job driver for xgw_run: builds the system described by an InputFile and
// executes the requested stage of the GW workflow (Fig. 1 of the paper),
// mirroring BerkeleyGW's executable-per-stage layout:
//
//   job bands        — mean-field band structure along L-Gamma-X
//   job epsilon      — chi(0), eps^{-1}(0); optional epsmat/WFN output files
//   job sigma        — GPP QP energies for sigma_bands
//   job sigma_offdiag— full Sigma matrix + Dyson solve
//   job ff           — full-frequency QP energies
//   job cohsex       — static COHSEX
//   job evgw         — eigenvalue-self-consistent GW
//   job rpa          — RPA correlation energy
//   job bse          — exciton spectrum + absorption
//   job gwpt         — electron-phonon coupling for all displacements
//
// Returns 0 on success; all output goes to the provided stream.

#include <iosfwd>

#include "cli/input.h"
#include "core/sigma.h"

namespace xgw {

/// The full list of keys xgw_run accepts (used to reject typos).
const std::vector<std::string>& known_input_keys();

int run_job(const InputFile& in, std::ostream& os);

// --- shared spec builders -------------------------------------------------
//
// The serve batch layer canonicalizes job specs through the SAME builders
// the per-job dispatchers use, so a spec means one thing whether it runs
// standalone or through the cache.

/// The material an input file describes (material/supercell/vacancy/vacuum).
EpmModel build_material_from_input(const InputFile& in);

/// The GW parameter set (cutoffs, eta, nv_block, coulomb scheme).
GwParameters build_params_from_input(const InputFile& in);

/// Memory budget in MB from `memory_budget_mb` / `memory_budget_machine`;
/// 0 = no budget.
double resolve_memory_budget_mb(const InputFile& in);

// --- batch mode -----------------------------------------------------------

/// Reads a batch manifest: one input-file path per line; '#' starts a
/// comment; blank lines are skipped; relative paths resolve against the
/// manifest's directory.
std::vector<std::string> read_job_manifest(const std::string& path);

/// Runs several input files in one process (shared autotune cache, one
/// scheduler pool), echoing a `job i/n <path> rc <rc>` status line after
/// each job's output. A failing job is reported and does not stop the
/// batch. Returns the worst per-job rc.
int run_job_files(const std::vector<std::string>& paths, std::ostream& os);

}  // namespace xgw

#include "cli/input.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace xgw {

InputFile InputFile::parse(const std::string& text,
                           const std::vector<std::string>& known_keys) {
  InputFile in;
  std::istringstream is(text);
  std::string line;
  idx lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank line
    std::string value, tok;
    while (ls >> tok) {
      if (!value.empty()) value += ' ';
      value += tok;
    }
    XGW_REQUIRE(!value.empty(), "input line " + std::to_string(lineno) +
                                    ": key '" + key + "' has no value");
    if (!known_keys.empty()) {
      XGW_REQUIRE(std::find(known_keys.begin(), known_keys.end(), key) !=
                      known_keys.end(),
                  "input line " + std::to_string(lineno) +
                      ": unknown key '" + key + "'");
    }
    in.kv_[key] = value;
  }
  return in;
}

InputFile InputFile::load(const std::string& path,
                          const std::vector<std::string>& known_keys) {
  std::ifstream f(path);
  XGW_REQUIRE(f.good(), "cannot open input file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str(), known_keys);
}

bool InputFile::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string InputFile::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::string InputFile::require_string(const std::string& key) const {
  const auto it = kv_.find(key);
  XGW_REQUIRE(it != kv_.end(), "missing required input key '" + key + "'");
  return it->second;
}

double InputFile::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(it->second, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  XGW_REQUIRE(pos == it->second.size(),
              "input key '" + key + "': not a number: " + it->second);
  return v;
}

idx InputFile::get_int(const std::string& key, idx fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(it->second, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  XGW_REQUIRE(pos == it->second.size(),
              "input key '" + key + "': not an integer: " + it->second);
  return v;
}

bool InputFile::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const std::string& s = it->second;
  if (s == "true" || s == "yes" || s == "1") return true;
  if (s == "false" || s == "no" || s == "0") return false;
  XGW_REQUIRE(false, "input key '" + key + "': not a boolean: " + s);
  return fallback;
}

std::vector<idx> InputFile::get_int_list(const std::string& key) const {
  std::vector<idx> out;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return out;
  std::istringstream ls(it->second);
  long long v = 0;
  while (ls >> v) out.push_back(v);
  XGW_REQUIRE(ls.eof(), "input key '" + key + "': bad integer list");
  return out;
}

}  // namespace xgw

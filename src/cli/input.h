#pragma once

// Input-file parser for the xgw_run driver — the BerkeleyGW-style plain
// text job description:
//
//   # silicon defect sigma run
//   job            sigma
//   material       silicon
//   supercell      2
//   vacancy        0
//   eps_cutoff     1.0
//   coulomb        spherical_average
//   sigma_bands    30 31 32 33
//
// One `key value...` pair per line; '#' starts a comment; later keys
// override earlier ones. Typed getters validate on access; unknown keys
// are rejected up front (silent typos in production inputs are expensive).

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace xgw {

class InputFile {
 public:
  /// Parses text. `known_keys` rejects anything not listed (pass empty to
  /// accept all).
  static InputFile parse(const std::string& text,
                         const std::vector<std::string>& known_keys = {});

  /// Reads and parses a file.
  static InputFile load(const std::string& path,
                        const std::vector<std::string>& known_keys = {});

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  double get_double(const std::string& key, double fallback) const;
  idx get_int(const std::string& key, idx fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::vector<idx> get_int_list(const std::string& key) const;

  /// Required variants throw with the key name when missing.
  std::string require_string(const std::string& key) const;

  const std::map<std::string, std::string>& entries() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace xgw

// xgw_run — the command-line driver: one input file, one workflow stage,
// mirroring BerkeleyGW's executable-per-stage production layout.
//
//   $ xgw_run sigma.inp
//   $ xgw_run --help

#include <cstdio>
#include <iostream>

#include "cli/driver.h"
#include "common/error.h"

namespace {

void print_usage() {
  std::printf(
      "usage: xgw_run <input-file>\n"
      "\n"
      "Runs one stage of the GW workflow described by a plain-text input\n"
      "file of `key value` lines ('#' comments). Jobs:\n"
      "  bands | epsilon | sigma | sigma_offdiag | ff | cohsex | evgw |\n"
      "  rpa | bse | gwpt | phonons\n"
      "\n"
      "minimal example (sigma.inp):\n"
      "  job        sigma\n"
      "  material   silicon\n"
      "  supercell  1\n"
      "\n"
      "accepted keys:\n");
  for (const std::string& k : xgw::known_input_keys())
    std::printf("  %s\n", k.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::string(argv[1]) == "--help" ||
      std::string(argv[1]) == "-h") {
    print_usage();
    return argc == 2 ? 0 : 1;
  }
  try {
    const xgw::InputFile in =
        xgw::InputFile::load(argv[1], xgw::known_input_keys());
    return xgw::run_job(in, std::cout);
  } catch (const xgw::Error& e) {
    std::fprintf(stderr, "xgw_run: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xgw_run: unexpected error: %s\n", e.what());
    return 1;
  }
}

// xgw_run — the command-line driver: input file(s), one workflow stage per
// job, mirroring BerkeleyGW's executable-per-stage production layout.
//
//   $ xgw_run sigma.inp
//   $ xgw_run epsilon.inp sigma.inp        # batch: one process, N jobs
//   $ xgw_run --manifest jobs.txt          # batch from a manifest file
//   $ xgw_run --help

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cli/driver.h"
#include "common/error.h"

namespace {

void print_usage() {
  std::printf(
      "usage: xgw_run <input-file> [<input-file> ...]\n"
      "       xgw_run --manifest <list-file>\n"
      "\n"
      "Runs one stage of the GW workflow per input file (plain-text\n"
      "`key value` lines, '#' comments). Several files — or a manifest\n"
      "listing one file per line — run as a batch in one process, sharing\n"
      "the autotune cache and scheduler pool, with a per-job status line.\n"
      "Jobs:\n"
      "  bands | epsilon | sigma | sigma_offdiag | ff | cohsex | evgw |\n"
      "  rpa | bse | gwpt | phonons\n"
      "\n"
      "minimal example (sigma.inp):\n"
      "  job        sigma\n"
      "  material   silicon\n"
      "  supercell  1\n"
      "\n"
      "accepted keys:\n");
  for (const std::string& k : xgw::known_input_keys())
    std::printf("  %s\n", k.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    print_usage();
    return args.empty() ? 1 : 0;
  }
  try {
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == "--manifest") {
        XGW_REQUIRE(i + 1 < args.size(), "--manifest needs a list file");
        const auto listed = xgw::read_job_manifest(args[++i]);
        paths.insert(paths.end(), listed.begin(), listed.end());
      } else {
        paths.push_back(args[i]);
      }
    }
    if (paths.size() == 1)
      return xgw::run_job(
          xgw::InputFile::load(paths[0], xgw::known_input_keys()), std::cout);
    return xgw::run_job_files(paths, std::cout);
  } catch (const xgw::Error& e) {
    std::fprintf(stderr, "xgw_run: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xgw_run: unexpected error: %s\n", e.what());
    return 1;
  }
}

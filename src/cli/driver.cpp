#include "cli/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>

#include <span>

#include "bse/bse.h"
#include "common/error.h"
#include "common/quadrature.h"
#include "common/validate.h"
#include "core/cohsex.h"
#include "core/evgw.h"
#include "core/rpa.h"
#include "core/sigma_ff.h"
#include "core/sigma_st.h"
#include "gwpt/gwpt.h"
#include "gwpt/phonons.h"
#include "io/binio.h"
#include "io/iohooks.h"
#include "la/autotune.h"
#include "la/gemm.h"
#include "mf/bandstructure.h"
#include "mem/planner.h"
#include "mem/spill.h"
#include "mem/tracker.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "perf/machines.h"
#include "perf/progmodel.h"
#include "pseudobands/pseudobands.h"
#include "sched/executor.h"

namespace xgw {

const std::vector<std::string>& known_input_keys() {
  static const std::vector<std::string> keys{
      "job",         "material",     "supercell",    "vacancy",
      "substitution","psi_cutoff",   "eps_cutoff",   "coulomb",
      "n_bands",     "eta",          "nv_block",     "sigma_bands",
      "n_e_points",  "e_step",       "n_freq",       "subspace_fraction",
      "pseudobands", "pseudobands_nxi", "scissors",  "bse_nval",
      "bse_ncond",   "output_wfn",   "input_wfn",    "output_epsmat",
      "evgw_max_iter", "evgw_mixing", "rpa_n_freq",  "band_segments",
      "vacuum",      "checkpoint",   "checkpoint_every",
      "trace",       "trace_detail", "metrics",      "run_report",
      "peak_gflops", "mem_gbps",     "memory_budget_mb",
      "memory_budget_machine",       "spill_dir",    "validate",
      "io_retry_attempts",           "io_retry_backoff_ms",
      "spill_verify", "sched_workers",
      "sigma_method", "n_tau",
  };
  return keys;
}

namespace {

EpmModel build_material(const InputFile& in) {
  const std::string name = in.require_string("material");
  const idx n = in.get_int("supercell", 1);
  EpmModel model = [&] {
    if (name == "silicon" || name == "si") return EpmModel::silicon(n);
    if (name == "lih") return EpmModel::lih(n);
    if (name == "bn") return EpmModel::bn(n);
    if (name == "bn_monolayer")
      return EpmModel::bn_monolayer(n, in.get_double("vacuum", 16.0));
    XGW_REQUIRE(false, "unknown material '" + name + "'");
    return EpmModel::silicon(1);
  }();
  if (in.has("vacancy")) model = model.with_vacancy(in.get_int("vacancy", 0));
  return model;
}

GwParameters build_params(const InputFile& in) {
  GwParameters p;
  p.psi_cutoff = in.get_double("psi_cutoff", -1.0);
  p.eps_cutoff = in.get_double("eps_cutoff", -1.0);
  p.n_bands = in.get_int("n_bands", -1);
  p.eta = in.get_double("eta", 1e-3);
  p.nv_block = in.get_int("nv_block", 8);
  const std::string c = in.get_string("coulomb", "spherical_average");
  if (c == "spherical_average")
    p.coulomb = CoulombScheme::kSphericalAverage;
  else if (c == "spherical_truncate")
    p.coulomb = CoulombScheme::kSphericalTruncate;
  else if (c == "slab")
    p.coulomb = CoulombScheme::kSlabTruncate;
  else if (c == "exclude_head")
    p.coulomb = CoulombScheme::kExcludeHead;
  else
    XGW_REQUIRE(false, "unknown coulomb scheme '" + c + "'");
  return p;
}

std::vector<idx> sigma_bands(const InputFile& in, const GwCalculation& gw) {
  std::vector<idx> bands = in.get_int_list("sigma_bands");
  if (bands.empty())
    bands = {gw.n_valence() - 1, gw.n_valence()};
  return bands;
}

void maybe_compress(const InputFile& in, GwCalculation& gw) {
  if (!in.get_bool("pseudobands", false)) return;
  PseudobandsOptions opt;
  opt.n_xi = in.get_int("pseudobands_nxi", 3);
  gw.set_wavefunctions(build_pseudobands(gw.wavefunctions(), opt));
}

void print_header(std::ostream& os, const GwCalculation& gw) {
  os << "system: N_G^psi = " << gw.n_g_psi() << ", N_G = " << gw.n_g()
     << ", N_b = " << gw.n_bands() << ", N_v = " << gw.n_valence() << "\n";
}

/// Memory budget in MB: `memory_budget_mb` wins; otherwise
/// `memory_budget_machine` uses the named platform's per-GPU HBM capacity.
/// 0 = no budget (everything stays in-core, no blocking pressure).
double resolve_budget_mb(const InputFile& in) {
  double budget = in.get_double("memory_budget_mb", 0.0);
  if (budget <= 0.0 && in.has("memory_budget_machine"))
    budget = machine_by_name(in.require_string("memory_budget_machine"))
                 .hbm_per_gpu /
             (1024.0 * 1024.0);
  return budget;
}

/// Solve the NV-Block / CHI-Freq plan for this calculation's Table-2 sizes
/// under the resolved budget, charging the bytes already live (wavefunctions,
/// cached stages) as the fixed floor.
mem::MemPlan plan_for(const GwCalculation& gw, double budget_mb, idx nfreq) {
  mem::PlannerInput pin;
  pin.budget_bytes = mem::mb(budget_mb);
  pin.nv = gw.n_valence();
  pin.nc = gw.n_bands() - gw.n_valence();
  pin.ng = gw.n_g();
  pin.ncols = gw.n_g();
  pin.nfreq = nfreq;
  pin.threads = xgw_num_threads();
  pin.fixed_bytes = mem::tracker().current_bytes();
  return mem::plan(pin);
}

/// Apply the budget to a job that runs CHI_SUM through GwCalculation (the
/// planner's nv_block changes results only at roundoff level, so this
/// shapes memory, not physics).
void apply_budget(const InputFile& in, GwCalculation& gw, idx nfreq,
                  std::ostream& os) {
  const double budget_mb = resolve_budget_mb(in);
  if (budget_mb <= 0.0) return;
  const mem::MemPlan plan = plan_for(gw, budget_mb, nfreq);
  gw.set_nv_block(plan.nv_block);
  os << "mem_plan " << plan.describe() << "\n";
}

int job_bands(const InputFile& in, std::ostream& os) {
  const EpmModel model = build_material(in);
  const idx segs = in.get_int("band_segments", 12);
  const auto bands = band_path(model, fcc_lgx_path(), segs,
                               model.n_valence_bands() + 4,
                               in.get_double("psi_cutoff", -1.0));
  os << "# k_path";
  for (idx b = 0; b < model.n_valence_bands() + 4; ++b) os << " band" << b;
  os << "\n" << std::fixed << std::setprecision(4);
  for (const BandsAtK& bk : bands) {
    os << bk.path_length;
    for (double e : bk.energy) os << " " << e * kHartreeToEv;
    os << "\n";
  }
  const GapInfo g = path_gaps(bands, model.n_valence_bands());
  os << "indirect_gap_eV " << g.indirect * kHartreeToEv << "\n"
     << "direct_gap_eV " << g.direct * kHartreeToEv << "\n";
  return 0;
}

int job_epsilon(const InputFile& in, std::ostream& os) {
  GwCalculation gw(build_material(in), build_params(in));
  if (in.has("input_wfn"))
    gw.set_wavefunctions(read_wavefunctions(in.require_string("input_wfn")));
  maybe_compress(in, gw);
  print_header(os, gw);
  apply_budget(in, gw, in.has("n_freq") ? in.get_int("n_freq", 8) : 1, os);
  os << std::fixed << std::setprecision(6);
  os << "epsinv_head " << gw.epsinv0()(0, 0).real() << "\n";
  if (in.has("n_freq")) {
    // Imaginary-axis frequency sweep with checkpoint/restart: an
    // interrupted job rerun with the same input resumes where it stopped.
    const QuadratureRule rule =
        gauss_legendre_semi_infinite(in.get_int("n_freq", 8), 1.0);
    ChiOptions copt;
    copt.eta = gw.params().eta;
    copt.nv_block = gw.params().nv_block;
    copt.imaginary_axis = true;
    EpsilonLoopOptions loop;
    loop.checkpoint_path = in.get_string("checkpoint", "");
    loop.checkpoint_every = in.get_int("checkpoint_every", 1);
    const auto epsinv = epsilon_inverse_multi(
        gw.mtxel(), gw.wavefunctions(), gw.coulomb(),
        std::span<const double>(rule.nodes), copt, loop);
    for (std::size_t k = 0; k < epsinv.size(); ++k)
      os << "epsinv_head(i*" << rule.nodes[k] << ") "
         << epsinv[k](0, 0).real() << "\n";
  }
  if (in.has("output_wfn"))
    write_wavefunctions(in.require_string("output_wfn"), gw.wavefunctions());
  if (in.has("output_epsmat"))
    write_matrix(in.require_string("output_epsmat"), gw.epsinv0());
  os << gw.timers().report();
  return 0;
}

/// Space-time (minimax i tau / i omega) route for job `sigma`, selected
/// with `sigma_method space_time`. The memory budget goes to StOptions
/// (build_st_screening runs its own planner pass) instead of apply_budget.
int run_sigma_st(const InputFile& in, GwCalculation& gw, std::ostream& os) {
  StOptions so;
  so.n_tau = in.get_int("n_tau", 14);
  so.eta = gw.params().eta;
  so.chi.nv_block = gw.params().nv_block;
  so.memory_budget_mb = resolve_budget_mb(in);
  so.spill_dir = in.get_string("spill_dir", "xgw_spill");
  if (in.has("n_tau")) os << "n_tau " << so.n_tau << "\n";
  const StScreening scr = build_st_screening(gw, so);
  if (scr.wtau.spilling())
    os << "mem_spill resident_mb "
       << static_cast<double>(scr.wtau.pool()->budget_bytes()) /
              (1024.0 * 1024.0)
       << "\n";
  const auto res = sigma_st_diag(gw, scr, sigma_bands(in, gw), so);
  // Deterministic counters (exact-gated by bench_spacetime / CI smoke).
  os << "st_grid_n_tau " << scr.n_tau << "\n"
     << "st_tau_batches " << scr.tau_batches << "\n";
  os << std::fixed << std::setprecision(4);
  os << "band   E_MF(eV)   SigX(eV)   SigC(eV)   Z      E_QP(eV)\n";
  for (const StResult& r : res)
    os << r.band << "  " << r.e_mf * kHartreeToEv << "  "
       << r.sigma_x.real() * kHartreeToEv << "  "
       << r.sigma_c.real() * kHartreeToEv << "  " << r.z << "  "
       << r.e_qp * kHartreeToEv << "\n";
  os << gw.timers().report();
  return 0;
}

int job_sigma(const InputFile& in, std::ostream& os) {
  GwCalculation gw(build_material(in), build_params(in));
  if (in.has("input_wfn"))
    gw.set_wavefunctions(read_wavefunctions(in.require_string("input_wfn")));
  maybe_compress(in, gw);
  print_header(os, gw);
  const std::string method = in.get_string("sigma_method", "gpp");
  XGW_REQUIRE(method == "gpp" || method == "space_time",
              "unknown sigma_method '" + method + "'");
  if (in.has("sigma_method")) os << "sigma_method " << method << "\n";
  if (method == "space_time") return run_sigma_st(in, gw, os);
  apply_budget(in, gw, 1, os);
  GwCalculation::CheckpointOptions ckpt;
  ckpt.path = in.get_string("checkpoint", "");
  ckpt.every = in.get_int("checkpoint_every", 1);
  const auto qp = ckpt.path.empty()
                      ? gw.sigma_diag(sigma_bands(in, gw),
                                      in.get_int("n_e_points", 3),
                                      in.get_double("e_step", 0.02))
                      : gw.sigma_diag_checkpointed(
                            sigma_bands(in, gw), in.get_int("n_e_points", 3),
                            in.get_double("e_step", 0.02), ckpt);
  os << std::fixed << std::setprecision(4);
  os << "band   E_MF(eV)   SX(eV)   CH(eV)   Z      E_QP(eV)\n";
  for (const QpResult& r : qp)
    os << r.band << "  " << r.e_mf * kHartreeToEv << "  "
       << r.sigma.sx.real() * kHartreeToEv << "  "
       << r.sigma.ch.real() * kHartreeToEv << "  " << r.z << "  "
       << r.e_qp * kHartreeToEv << "\n";
  os << gw.timers().report();
  return 0;
}

int job_sigma_offdiag(const InputFile& in, std::ostream& os) {
  GwCalculation gw(build_material(in), build_params(in));
  maybe_compress(in, gw);
  print_header(os, gw);
  const std::vector<idx> bands = sigma_bands(in, gw);
  const auto e_full = gw.dyson_full_solve(bands, in.get_int("n_e_points", 12));
  os << std::fixed << std::setprecision(4);
  os << "full Dyson quasiparticle energies (eV):\n";
  for (double e : e_full) os << "  " << e * kHartreeToEv << "\n";
  return 0;
}

int job_ff(const InputFile& in, std::ostream& os) {
  GwCalculation gw(build_material(in), build_params(in));
  maybe_compress(in, gw);
  print_header(os, gw);
  FfOptions fo;
  fo.n_freq = in.get_int("n_freq", 24);
  fo.subspace_fraction = in.get_double("subspace_fraction", 0.0);
  fo.chi.nv_block = in.get_int("nv_block", fo.chi.nv_block);
  fo.memory_budget_mb = resolve_budget_mb(in);
  fo.spill_dir = in.get_string("spill_dir", "xgw_spill");
  const FfScreening scr = build_ff_screening(gw, fo);
  if (scr.bv.spilling())
    os << "mem_spill resident_mb "
       << static_cast<double>(scr.bv.pool()->budget_bytes()) /
              (1024.0 * 1024.0)
       << "\n";
  const auto res = sigma_ff_diag(gw, scr, sigma_bands(in, gw));
  os << std::fixed << std::setprecision(4);
  os << "band   E_MF(eV)   SigX(eV)   SigC(eV)   E_QP(eV)\n";
  for (const FfResult& r : res)
    os << r.band << "  " << r.e_mf * kHartreeToEv << "  "
       << r.sigma_x.real() * kHartreeToEv << "  "
       << r.sigma_c.real() * kHartreeToEv << "  " << r.e_qp * kHartreeToEv
       << "\n";
  return 0;
}

int job_cohsex(const InputFile& in, std::ostream& os) {
  GwCalculation gw(build_material(in), build_params(in));
  print_header(os, gw);
  const auto res = cohsex_diag(gw, sigma_bands(in, gw));
  os << std::fixed << std::setprecision(4);
  os << "band   SEX(eV)   COH(eV)   total(eV)\n";
  const auto bands = sigma_bands(in, gw);
  for (std::size_t i = 0; i < res.size(); ++i)
    os << bands[i] << "  " << res[i].sex.real() * kHartreeToEv << "  "
       << res[i].coh.real() * kHartreeToEv << "  "
       << res[i].total().real() * kHartreeToEv << "\n";
  return 0;
}

int job_evgw(const InputFile& in, std::ostream& os) {
  GwCalculation gw(build_material(in), build_params(in));
  print_header(os, gw);
  EvGwOptions opt;
  opt.max_iter = in.get_int("evgw_max_iter", 8);
  opt.mixing = in.get_double("evgw_mixing", 0.7);
  const EvGwResult res = evgw(gw, sigma_bands(in, gw), opt);
  os << std::fixed << std::setprecision(4);
  for (std::size_t it = 0; it < res.history.size(); ++it) {
    os << "iter " << it << ":";
    for (const QpResult& r : res.history[it])
      os << "  " << r.e_qp * kHartreeToEv;
    os << "\n";
  }
  os << (res.converged ? "converged" : "NOT converged") << " after "
     << res.iterations << " iterations\n";
  return res.converged ? 0 : 2;
}

int job_rpa(const InputFile& in, std::ostream& os) {
  GwCalculation gw(build_material(in), build_params(in));
  print_header(os, gw);
  RpaOptions opt;
  opt.n_freq = in.get_int("rpa_n_freq", 16);
  opt.subspace_fraction = in.get_double("subspace_fraction", 0.0);
  const RpaResult res = rpa_correlation_energy(gw, opt);
  os << std::setprecision(8);
  os << "E_c_RPA_Ha " << res.e_c << "\n";
  os << "E_c_RPA_eV " << res.e_c * kHartreeToEv << "\n";
  if (res.n_eig_used > 0) os << "subspace_n_eig " << res.n_eig_used << "\n";
  return 0;
}

int job_bse(const InputFile& in, std::ostream& os) {
  GwCalculation gw(build_material(in), build_params(in));
  print_header(os, gw);
  BseOptions opt;
  opt.n_val = in.get_int("bse_nval", 3);
  opt.n_cond = in.get_int("bse_ncond", 3);
  opt.scissors = in.get_double("scissors", 0.0);
  BseCalculation bse(gw, opt);
  const BseResult res = bse.solve();
  const double qp_gap = gw.wavefunctions().gap() + opt.scissors;
  os << std::fixed << std::setprecision(4);
  os << "qp_gap_eV " << qp_gap * kHartreeToEv << "\n";
  for (int s = 0; s < std::min<idx>(6, res.n_pairs()); ++s)
    os << "exciton " << s << " "
       << res.energy[static_cast<std::size_t>(s)] * kHartreeToEv
       << " eV (binding "
       << (qp_gap - res.energy[static_cast<std::size_t>(s)]) * kHartreeToEv *
              1e3
       << " meV)\n";
  return 0;
}

int job_gwpt(const InputFile& in, std::ostream& os) {
  GwCalculation gw(build_material(in), build_params(in));
  print_header(os, gw);
  const std::vector<idx> bands = sigma_bands(in, gw);
  GwptOptions go;
  go.n_e_points = in.get_int("n_e_points", 2);
  GwptCalculation gwpt(gw, go);
  os << std::fixed << std::setprecision(4);
  const idx natoms = gw.hamiltonian().model().crystal().n_atoms();
  for (idx a = 0; a < natoms; ++a)
    for (int ax = 0; ax < 3; ++ax) {
      const GwptResult r = gwpt.run_perturbation({a, ax}, bands);
      double gd = 0.0, gg = 0.0;
      for (idx i = 0; i < r.g_dfpt.rows(); ++i)
        for (idx j = 0; j < r.g_dfpt.cols(); ++j)
          if (i != j && std::abs(r.g_dfpt(i, j)) > gd) {
            gd = std::abs(r.g_dfpt(i, j));
            gg = std::abs(r.g_gw(i, j));
          }
      os << "atom " << a << " axis " << ax << "  |g_DFPT| "
         << gd * kHartreeToEv << " eV/Bohr  |g_GW| " << gg * kHartreeToEv
         << " eV/Bohr\n";
    }
  return 0;
}

int job_phonons(const InputFile& in, std::ostream& os) {
  const EpmModel model = build_material(in);
  const double cutoff = in.get_double("psi_cutoff", model.default_cutoff());
  const DMatrix phi = force_constants(model, cutoff);
  const PhononModes modes = phonon_modes(model, phi);
  os << std::fixed << std::setprecision(3);
  os << "Gamma phonon modes (meV):\n";
  for (idx nu = 0; nu < modes.n_modes(); ++nu)
    os << "  mode " << nu << "  "
       << modes.omega[static_cast<std::size_t>(nu)] * kHartreeToEv * 1e3
       << (std::abs(modes.omega[static_cast<std::size_t>(nu)]) < 2e-4
               ? "  (acoustic)\n"
               : "\n");
  return 0;
}

int dispatch_job(const std::string& job, const InputFile& in,
                 std::ostream& os) {
  if (job == "bands") return job_bands(in, os);
  if (job == "epsilon") return job_epsilon(in, os);
  if (job == "sigma") return job_sigma(in, os);
  if (job == "sigma_offdiag") return job_sigma_offdiag(in, os);
  if (job == "ff") return job_ff(in, os);
  if (job == "cohsex") return job_cohsex(in, os);
  if (job == "evgw") return job_evgw(in, os);
  if (job == "rpa") return job_rpa(in, os);
  if (job == "bse") return job_bse(in, os);
  if (job == "gwpt") return job_gwpt(in, os);
  if (job == "phonons") return job_phonons(in, os);
  XGW_REQUIRE(false, "unknown job '" + job + "'");
  return 1;
}

/// Canonical text form of the parsed input (sorted keys) — what the run
/// report's config hash is computed over, so two inputs that parse to the
/// same configuration hash identically regardless of formatting.
std::string canonical_config(const InputFile& in) {
  std::string cfg;
  for (const auto& [k, v] : in.entries()) {
    cfg += k;
    cfg += ' ';
    cfg += v;
    cfg += '\n';
  }
  return cfg;
}

}  // namespace

EpmModel build_material_from_input(const InputFile& in) {
  return build_material(in);
}

GwParameters build_params_from_input(const InputFile& in) {
  return build_params(in);
}

double resolve_memory_budget_mb(const InputFile& in) {
  return resolve_budget_mb(in);
}

std::vector<std::string> read_job_manifest(const std::string& path) {
  std::ifstream is(path);
  XGW_REQUIRE(is.good(), "cannot open manifest '" + path + "'");
  const std::filesystem::path base = std::filesystem::path(path).parent_path();
  std::vector<std::string> paths;
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const std::size_t e = line.find_last_not_of(" \t\r");
    std::filesystem::path p(line.substr(b, e - b + 1));
    if (p.is_relative()) p = base / p;
    paths.push_back(p.string());
  }
  XGW_REQUIRE(!paths.empty(), "manifest '" + path + "' lists no input files");
  return paths;
}

int run_job_files(const std::vector<std::string>& paths, std::ostream& os) {
  XGW_REQUIRE(!paths.empty(), "run_job_files: no input files");
  int worst = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    os << "=== job " << i + 1 << "/" << paths.size() << " " << paths[i]
       << " ===\n";
    int rc = 0;
    std::string err;
    try {
      rc = run_job(InputFile::load(paths[i], known_input_keys()), os);
    } catch (const Error& e) {
      rc = 1;
      err = e.what();
    }
    os << "job " << i + 1 << "/" << paths.size() << " " << paths[i] << " rc "
       << rc;
    if (!err.empty()) os << " error " << err;
    os << "\n";
    worst = std::max(worst, rc);
  }
  return worst;
}

int run_job(const InputFile& in, std::ostream& os) {
  const std::string job = in.require_string("job");

  // Robustness knobs. Each is assigned unconditionally from
  // input-or-default so one run never inherits the previous run's modes
  // (run_job is re-entered in-process by tests and batch drivers).
  set_validate_mode(parse_validate_mode(in.get_string("validate", "error")));
  {
    io::IoRetryPolicy rp;  // defaults = seed behavior (retries disabled)
    rp.max_attempts = static_cast<int>(
        in.get_int("io_retry_attempts", rp.max_attempts));
    XGW_REQUIRE(rp.max_attempts >= 1, "io_retry_attempts must be >= 1");
    rp.backoff_base_s =
        in.get_double("io_retry_backoff_ms", rp.backoff_base_s * 1e3) * 1e-3;
    XGW_REQUIRE(rp.backoff_base_s >= 0.0,
                "io_retry_backoff_ms must be >= 0");
    io::set_io_retry_policy(rp);
    if (in.has("io_retry_attempts") || in.has("io_retry_backoff_ms"))
      os << "io_retry attempts " << rp.max_attempts << " backoff_ms "
         << rp.backoff_base_s * 1e3 << "\n";
  }
  mem::set_spill_verify(
      mem::parse_spill_verify(in.get_string("spill_verify", "size")));
  {
    // 0 = fall back to XGW_SCHED_WORKERS / serial; results are bitwise
    // identical at any worker count, so this is a speed knob, not physics.
    const idx workers = in.get_int("sched_workers", 0);
    XGW_REQUIRE(workers >= 0, "sched_workers must be >= 0");
    sched::Executor::set_default_workers(static_cast<int>(workers));
    if (in.has("sched_workers"))
      os << "sched_workers " << sched::Executor::default_workers() << "\n";
  }
  if (in.has("validate"))
    os << "validate_mode " << to_string(validate_mode()) << "\n";
  if (in.has("spill_verify"))
    os << "spill_verify " << mem::to_string(mem::spill_verify()) << "\n";

  const std::string trace_path = in.get_string("trace", "");
  const std::string metrics_path = in.get_string("metrics", "");
  const std::string report_path = in.get_string("run_report", "");
  const bool observe = !trace_path.empty() || !report_path.empty();
  if (observe) {
    const idx detail = in.get_int("trace_detail", obs::detail_level::kKernel);
    XGW_REQUIRE(detail >= obs::detail_level::kStage &&
                    detail <= obs::detail_level::kFine,
                "trace_detail must be 1 (stage), 2 (kernel) or 3 (fine)");
    obs::recorder().enable(static_cast<int>(detail));
  }

  int rc;
  {
    const std::string stage = "job:" + job;
    obs::Span span(stage.c_str(), "stage", obs::detail_level::kStage);
    rc = dispatch_job(job, in, os);
  }

  if (observe) {
    obs::recorder().disable();
    os << obs::recorder().breakdown();
  }
  if (!trace_path.empty()) {
    XGW_REQUIRE(obs::recorder().write_chrome_trace(trace_path),
                "run_job: cannot write trace to " + trace_path);
    os << "trace_written " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    obs::record_mem_gauges();
    XGW_REQUIRE(obs::metrics().write_json(metrics_path),
                "run_job: cannot write metrics to " + metrics_path);
    os << "metrics_written " << metrics_path << "\n";
  }
  if (!report_path.empty()) {
    double peak = in.get_double("peak_gflops", 0.0);
    const double bw = in.get_double("mem_gbps", 0.0);
    // No nominal peak in the job file: fall back to the MEASURED FMA peak
    // from the autotune probe so report efficiencies are relative to what
    // this machine can actually execute, not a datasheet number.
    if (peak <= 0.0) peak = la::autotune_result().fma_peak_gflops;
    obs::RunReportDoc doc = obs::build_run_report(
        obs::recorder(), job, canonical_config(in), peak, bw);
    if (peak > 0.0 && bw > 0.0) {
      // Stamp the packed split-GEMM engine ceiling (K = one KC block with
      // the default panel reuse) next to the measured stage rates.
      const KernelRoofline kr =
          split_gemm_roofline(peak * 1e9, bw * 1e9, gemm_tiling().kc);
      doc.split_gemm_roofline_gflops = kr.attainable_flops / 1e9;
    }
    XGW_REQUIRE(doc.write(report_path),
                "run_job: cannot write run report to " + report_path);
    os << "run_report_written " << report_path << "\n";
  }
  return rc;
}

}  // namespace xgw
